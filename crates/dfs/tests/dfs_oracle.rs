//! Filesystem-oracle property test: random namespace programs run both
//! against `DfsHandle` over the embedded backend and against a plain
//! `BTreeMap` tree model, and every observation — success, typed error
//! (variant *and* canonical path), stat, readdir listing, read bytes —
//! must match exactly. This pins the POSIX corner semantics (walk-order
//! errors, EOF clamping, hole zero-fill, empty-dir unlink, rename
//! replace/cycle rules) to an executable specification.

use std::collections::BTreeMap;

use bytes::Bytes;
use daosim_dfs::{canonical, normalize, DfsError, DfsHandle, FileKind};
use daosim_objstore::prelude::{EmbeddedClient, Uuid};
use daosim_objstore::DaosStore;
use proptest::prelude::*;

fn block_on<F: std::future::Future>(fut: F) -> F::Output {
    let waker = std::task::Waker::noop();
    let mut cx = std::task::Context::from_waker(waker);
    let mut fut = std::pin::pin!(fut);
    match fut.as_mut().poll(&mut cx) {
        std::task::Poll::Ready(v) => v,
        std::task::Poll::Pending => panic!("embedded backend suspended"),
    }
}

// ---------------------------------------------------------------------------
// The model: a BTreeMap tree with DfsHandle's exact error discipline.

#[derive(Clone, Debug)]
enum Node {
    Dir(BTreeMap<String, Node>),
    File(Vec<u8>),
}

struct Model {
    root: BTreeMap<String, Node>,
}

/// Model errors render to the same `variant:path` observation strings as
/// the real `DfsError`s.
type Obs = Result<String, String>;

fn err(variant: &str, path: &str) -> Obs {
    Err(format!("{variant}:{path}"))
}

fn obs_of(e: &DfsError) -> String {
    match e {
        DfsError::NotFound(p) => format!("NotFound:{p}"),
        DfsError::NotADirectory(p) => format!("NotADirectory:{p}"),
        DfsError::IsADirectory(p) => format!("IsADirectory:{p}"),
        DfsError::Exists(p) => format!("Exists:{p}"),
        DfsError::NotEmpty(p) => format!("NotEmpty:{p}"),
        DfsError::InvalidPath(p) => format!("InvalidPath:{p}"),
        DfsError::BadDirent(p) => format!("BadDirent:{p}"),
        DfsError::Daos { op, path, source } => format!("Daos:{op}:{path}:{source}"),
    }
}

impl Model {
    fn new() -> Self {
        Model {
            root: BTreeMap::new(),
        }
    }

    /// Mirrors `DfsHandle::resolve_dir`: walk insisting on directories,
    /// reporting the first offending prefix.
    fn resolve_dir(&mut self, comps: &[String]) -> Result<&mut BTreeMap<String, Node>, String> {
        let mut cur = &mut self.root;
        for (i, c) in comps.iter().enumerate() {
            let here = canonical(&comps[..i + 1]);
            match cur.get_mut(c) {
                None => return Err(format!("NotFound:{here}")),
                Some(Node::Dir(d)) => cur = d,
                Some(Node::File(_)) => return Err(format!("NotADirectory:{here}")),
            }
        }
        Ok(cur)
    }

    fn lookup(&mut self, comps: &[String]) -> Result<Option<&mut Node>, String> {
        let (name, parent) = comps.split_last().expect("caller rejects the root");
        Ok(self.resolve_dir(parent)?.get_mut(name.as_str()))
    }

    fn mkdir(&mut self, comps: &[String]) -> Obs {
        if comps.is_empty() {
            return err("Exists", "/");
        }
        let canon = canonical(comps);
        let (name, parent) = comps.split_last().unwrap();
        let dir = self.resolve_dir(parent)?;
        if dir.contains_key(name.as_str()) {
            return err("Exists", &canon);
        }
        dir.insert(name.clone(), Node::Dir(BTreeMap::new()));
        Ok("ok".into())
    }

    fn create(&mut self, comps: &[String]) -> Obs {
        if comps.is_empty() {
            return err("IsADirectory", "/");
        }
        let canon = canonical(comps);
        let (name, parent) = comps.split_last().unwrap();
        let dir = self.resolve_dir(parent)?;
        if dir.contains_key(name.as_str()) {
            return err("Exists", &canon);
        }
        dir.insert(name.clone(), Node::File(Vec::new()));
        Ok("ok".into())
    }

    /// open-for-write + write + close, as the driver performs them.
    fn write(&mut self, comps: &[String], off: usize, data: &[u8]) -> Obs {
        if comps.is_empty() {
            return err("IsADirectory", "/");
        }
        let canon = canonical(comps);
        match self.lookup(comps)? {
            None => err("NotFound", &canon),
            Some(Node::Dir(_)) => err("IsADirectory", &canon),
            Some(Node::File(bytes)) => {
                let end = off + data.len();
                if bytes.len() < end {
                    bytes.resize(end, 0); // holes read back as zeros
                }
                bytes[off..end].copy_from_slice(data);
                Ok("ok".into())
            }
        }
    }

    /// open + read + close: clamped at EOF, never past size.
    fn read(&mut self, comps: &[String], off: usize, len: usize) -> Obs {
        if comps.is_empty() {
            return err("IsADirectory", "/");
        }
        let canon = canonical(comps);
        match self.lookup(comps)? {
            None => err("NotFound", &canon),
            Some(Node::Dir(_)) => err("IsADirectory", &canon),
            Some(Node::File(bytes)) => {
                let start = off.min(bytes.len());
                let end = (off + len).min(bytes.len());
                Ok(format!("read:{:02x?}", &bytes[start..end]))
            }
        }
    }

    fn stat(&mut self, comps: &[String]) -> Obs {
        if comps.is_empty() {
            return Ok("stat:dir:0".into());
        }
        let canon = canonical(comps);
        match self.lookup(comps)? {
            None => err("NotFound", &canon),
            Some(Node::Dir(_)) => Ok("stat:dir:0".into()),
            Some(Node::File(b)) => Ok(format!("stat:file:{}", b.len())),
        }
    }

    fn readdir(&mut self, comps: &[String]) -> Obs {
        let dir = self.resolve_dir(comps)?;
        let rows: Vec<String> = dir
            .iter()
            .map(|(name, node)| match node {
                Node::Dir(_) => format!("{name}=dir:0"),
                Node::File(b) => format!("{name}=file:{}", b.len()),
            })
            .collect();
        Ok(format!("ls:{}", rows.join(",")))
    }

    fn unlink(&mut self, comps: &[String]) -> Obs {
        if comps.is_empty() {
            return err("InvalidPath", "/");
        }
        let canon = canonical(comps);
        let (name, parent) = comps.split_last().unwrap();
        let dir = self.resolve_dir(parent)?;
        match dir.get(name.as_str()) {
            None => return err("NotFound", &canon),
            Some(Node::Dir(d)) if !d.is_empty() => return err("NotEmpty", &canon),
            Some(_) => {}
        }
        dir.remove(name.as_str());
        Ok("ok".into())
    }

    fn rename(&mut self, s: &[String], d: &[String]) -> Obs {
        if s.is_empty() || d.is_empty() {
            return err("InvalidPath", "/");
        }
        let s_canon = canonical(s);
        let d_canon = canonical(d);
        // Source must resolve first (DfsHandle checks src before dst).
        let src_is_dir = match self.lookup(s)? {
            None => return err("NotFound", &s_canon),
            Some(Node::Dir(_)) => true,
            Some(Node::File(_)) => false,
        };
        if s == d {
            return Ok("ok".into());
        }
        if src_is_dir && d.len() > s.len() && d[..s.len()] == s[..] {
            return err("InvalidPath", &d_canon);
        }
        // Destination parent resolves next; then the replace rules.
        let (d_name, d_parent) = d.split_last().unwrap();
        match self.resolve_dir(d_parent)?.get(d_name.as_str()) {
            None => {}
            Some(Node::File(_)) if !src_is_dir => {} // file replaces file
            Some(_) => return err("Exists", &d_canon),
        }
        let (s_name, s_parent) = s.split_last().unwrap();
        let node = self
            .resolve_dir(s_parent)
            .expect("src parent resolved above")
            .remove(s_name.as_str())
            .expect("src entry resolved above");
        self.resolve_dir(d_parent)
            .expect("dst parent resolved above")
            .insert(d_name.clone(), node);
        Ok("ok".into())
    }
}

// ---------------------------------------------------------------------------
// Program generation: short paths over a 4-name alphabet so programs
// collide on purpose (same entries hit by mkdir/create/rename/unlink).

const NAMES: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Clone, Debug)]
enum Op {
    Mkdir(Vec<u8>),
    Create(Vec<u8>),
    Write {
        path: Vec<u8>,
        off: u16,
        len: u16,
        fill: u8,
    },
    Read {
        path: Vec<u8>,
        off: u16,
        len: u16,
    },
    Stat(Vec<u8>),
    Readdir(Vec<u8>),
    Unlink(Vec<u8>),
    Rename(Vec<u8>, Vec<u8>),
}

fn path() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..NAMES.len() as u8, 0..4)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        path().prop_map(Op::Mkdir),
        path().prop_map(Op::Create),
        (path(), 0u16..200, 0u16..200, any::<u8>()).prop_map(|(path, off, len, fill)| Op::Write {
            path,
            off,
            len,
            fill
        }),
        (path(), 0u16..300, 0u16..300).prop_map(|(path, off, len)| Op::Read { path, off, len }),
        path().prop_map(Op::Stat),
        path().prop_map(Op::Readdir),
        path().prop_map(Op::Unlink),
        (path(), path()).prop_map(|(s, d)| Op::Rename(s, d)),
    ]
}

fn comps(ids: &[u8]) -> Vec<String> {
    ids.iter().map(|&i| NAMES[i as usize].to_string()).collect()
}

fn render(path: &[u8]) -> String {
    canonical(&comps(path))
}

// ---------------------------------------------------------------------------
// The driver: one op against both worlds, observations must agree.

fn dfs_obs<T>(label: &str, r: Result<T, DfsError>, ok: impl FnOnce(T) -> String) -> Obs {
    match r {
        Ok(v) => Ok(ok(v)),
        Err(e) => {
            assert!(
                !matches!(e, DfsError::Daos { .. } | DfsError::BadDirent(_)),
                "{label}: unexpected backend failure {e}"
            );
            Err(obs_of(&e))
        }
    }
}

fn run_program(ops: &[Op]) {
    let (_store, pool) = DaosStore::with_single_pool(16);
    let client = EmbeddedClient::new(pool);
    let fs = block_on(DfsHandle::mount(client, Uuid::from_name(b"dfs-oracle"), 1))
        .expect("mount on a fresh pool");
    let mut model = Model::new();

    for (i, op) in ops.iter().enumerate() {
        let (got, want) = match op {
            Op::Mkdir(p) => (
                dfs_obs("mkdir", block_on(fs.mkdir(&render(p))), |()| "ok".into()),
                model.mkdir(&comps(p)),
            ),
            Op::Create(p) => (
                dfs_obs(
                    "create",
                    block_on(async {
                        let f = fs.create(&render(p)).await?;
                        fs.close(f).await
                    }),
                    |()| "ok".into(),
                ),
                model.create(&comps(p)),
            ),
            Op::Write {
                path,
                off,
                len,
                fill,
            } => {
                let data = vec![*fill; *len as usize];
                (
                    dfs_obs(
                        "write",
                        block_on(async {
                            let mut f = fs.open(&render(path)).await?;
                            fs.write(&mut f, *off as u64, Bytes::from(data.clone()))
                                .await?;
                            fs.close(f).await
                        }),
                        |()| "ok".into(),
                    ),
                    model.write(&comps(path), *off as usize, &data),
                )
            }
            Op::Read { path, off, len } => (
                dfs_obs(
                    "read",
                    block_on(async {
                        let f = fs.open(&render(path)).await?;
                        let data = fs.read(&f, *off as u64, *len as u64).await?;
                        fs.close(f).await?;
                        Ok(data)
                    }),
                    |data: Bytes| format!("read:{:02x?}", data.as_ref()),
                ),
                model.read(&comps(path), *off as usize, *len as usize),
            ),
            Op::Stat(p) => (
                dfs_obs("stat", block_on(fs.stat(&render(p))), |st| {
                    format!(
                        "stat:{}:{}",
                        match st.kind {
                            FileKind::Dir => "dir",
                            FileKind::File => "file",
                        },
                        st.size
                    )
                }),
                model.stat(&comps(p)),
            ),
            Op::Readdir(p) => (
                dfs_obs("readdir", block_on(fs.readdir(&render(p))), |rows| {
                    let rows: Vec<String> = rows
                        .iter()
                        .map(|e| {
                            format!(
                                "{}={}:{}",
                                e.name,
                                match e.kind {
                                    FileKind::Dir => "dir",
                                    FileKind::File => "file",
                                },
                                e.size
                            )
                        })
                        .collect();
                    format!("ls:{}", rows.join(","))
                }),
                model.readdir(&comps(p)),
            ),
            Op::Unlink(p) => (
                dfs_obs("unlink", block_on(fs.unlink(&render(p))), |()| "ok".into()),
                model.unlink(&comps(p)),
            ),
            Op::Rename(s, d) => (
                dfs_obs(
                    "rename",
                    block_on(fs.rename(&render(s), &render(d))),
                    |()| "ok".into(),
                ),
                model.rename(&comps(s), &comps(d)),
            ),
        };
        assert_eq!(got, want, "op {i} diverged: {op:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dfs_matches_btreemap_oracle(ops in proptest::collection::vec(op(), 1..40)) {
        run_program(&ops);
    }
}

/// The path layer alone, against std's component intuition: canonical
/// forms are idempotent and slash-insensitive.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonicalization_is_idempotent(ids in path(), extra_slash in any::<bool>()) {
        let raw = if extra_slash {
            format!("{}/", render(&ids))
        } else {
            render(&ids)
        };
        let c = canonical(&normalize(&raw).unwrap());
        prop_assert_eq!(&c, &render(&ids));
        prop_assert_eq!(canonical(&normalize(&c).unwrap()), c);
    }
}
