//! # daosim-media — two-tier SCM + NVMe storage timing model
//!
//! Models the storage media of a DAOS server node. The paper's
//! NEXTGenIO testbed is SCM-only (six first-generation Intel Optane DC
//! Persistent Memory Modules per socket, AppDirect-interleaved), and
//! [`TargetMedia`] keeps that single-tier model bit-for-bit. Production
//! DAOS adds an NVMe capacity tier behind the persistent-memory write
//! buffer: small/recent writes land in SCM, large writes go straight to
//! NVMe, and a background *aggregation* service migrates cold extents
//! SCM→NVMe once the write buffer passes a watermark. [`TieredMedia`]
//! models that regime (DESIGN.md §14).
//!
//! The timing model is deliberately simple: a socket's media tier has an
//! aggregate read and write bandwidth and a fixed access latency; a DAOS
//! *target* owns a static `1/targets` share of its socket's bandwidth
//! (matching DAOS's target-per-dedicated-thread-group design). Media
//! access time for a request is `latency + bytes / target_share`.
//! Contention between targets of one engine is therefore captured by the
//! static partition; queueing *within* a target is modelled by the
//! caller's per-target FIFO service queue.
//!
//! Unlike the seed model, capacity is *real* here: every write charges
//! the occupancy of the tier it lands in, and a write that finds every
//! eligible tier full fails with [`MediaFull`] (surfaced as the
//! permanent `DaosError::NoSpace` by the cluster layer). Occupancy is
//! charged in media granules (256 B XPLines on SCM, 4 KiB pages on
//! NVMe) so the byte-conservation invariant checked by the fuzz harness
//! is exact integer arithmetic: `scm_used = scm_landed − aggregated_out`
//! and `nvme_used = nvme_landed + aggregated_in`, always.

use std::cell::Cell;
use std::fmt;

use daosim_kernel::SimDuration;

/// One GiB in bytes, as a float.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Optane writes happen internally at 256-byte "XPLine" granularity;
/// sub-line updates pay a read-modify-write. We fold that into latency,
/// but expose the constant for documentation and capacity rounding.
pub const XPLINE: u64 = 256;

/// NVMe occupancy and write charging round to 4 KiB flash pages.
pub const NVME_PAGE: u64 = 4096;

/// Media characteristics of one socket's interleaved SCM region.
#[derive(Clone, Copy, Debug)]
pub struct ScmSpec {
    /// Aggregate sequential read bandwidth per socket, GiB/s.
    pub read_gib: f64,
    /// Aggregate sequential write bandwidth per socket, GiB/s.
    pub write_gib: f64,
    /// Read access latency (media + controller).
    pub read_latency: SimDuration,
    /// Write (ADR-flush visible) latency.
    pub write_latency: SimDuration,
    /// Capacity per socket in bytes (6 × 256 GiB on NEXTGenIO).
    pub capacity: u64,
}

impl ScmSpec {
    /// First-generation Optane DCPMM, 6 × 256 GiB interleaved per socket.
    pub fn optane_gen1() -> Self {
        ScmSpec {
            read_gib: 37.0,
            write_gib: 13.0,
            read_latency: SimDuration::from_nanos(320),
            write_latency: SimDuration::from_nanos(100),
            capacity: 6 * 256 * 1024 * 1024 * 1024,
        }
    }
}

impl Default for ScmSpec {
    fn default() -> Self {
        Self::optane_gen1()
    }
}

/// Media characteristics of one socket's NVMe capacity tier.
#[derive(Clone, Copy, Debug)]
pub struct NvmeSpec {
    /// Aggregate sequential read bandwidth per socket, GiB/s.
    pub read_gib: f64,
    /// Aggregate sequential write bandwidth per socket, GiB/s.
    pub write_gib: f64,
    /// Read access latency (queue + flash translation + media).
    pub read_latency: SimDuration,
    /// Write (power-loss-protected buffer) latency.
    pub write_latency: SimDuration,
    /// Capacity per socket in bytes.
    pub capacity: u64,
}

impl NvmeSpec {
    /// Four Intel DC P4510 (gen-1 data-centre NVMe, ~3.2/3.0 GB/s
    /// sequential per drive) behind one socket: aggregate ~11.9 GiB/s
    /// read, ~11.2 GiB/s write, 4 × 4 TiB capacity. Latencies are the
    /// published sequential access numbers (reads pay the flash path,
    /// writes land in the capacitor-backed buffer). See the DESIGN.md
    /// §14 calibration table.
    pub fn p4510_gen1() -> Self {
        NvmeSpec {
            read_gib: 11.9,
            write_gib: 11.2,
            read_latency: SimDuration::from_micros(85),
            write_latency: SimDuration::from_micros(25),
            capacity: 4 * 4 * 1024 * 1024 * 1024 * 1024,
        }
    }
}

impl Default for NvmeSpec {
    fn default() -> Self {
        Self::p4510_gen1()
    }
}

/// A structurally invalid media configuration, reported at construction
/// instead of panicking deep inside a deployment (the PR 8 zero-shape
/// pattern: `daosctl` maps these onto `BadArgs` usage errors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MediaConfigError {
    /// `targets_per_socket` was zero — a socket needs at least one target.
    ZeroTargets,
    /// Watermarks must satisfy `0 < low < high <= 1`.
    BadWatermarks { low: f64, high: f64 },
}

impl fmt::Display for MediaConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MediaConfigError::ZeroTargets => {
                write!(f, "media config: need at least one target per socket")
            }
            MediaConfigError::BadWatermarks { low, high } => write!(
                f,
                "media config: watermarks must satisfy 0 < low < high <= 1, got low={low} high={high}"
            ),
        }
    }
}

impl std::error::Error for MediaConfigError {}

/// The static bandwidth share of one DAOS target within a socket's SCM
/// region. This is the paper's single-tier model, kept verbatim as the
/// SCM leg of [`TieredMedia`].
#[derive(Clone, Copy, Debug)]
pub struct TargetMedia {
    spec: ScmSpec,
    targets_per_socket: u32,
}

impl TargetMedia {
    pub fn new(spec: ScmSpec, targets_per_socket: u32) -> Result<Self, MediaConfigError> {
        if targets_per_socket == 0 {
            return Err(MediaConfigError::ZeroTargets);
        }
        Ok(TargetMedia {
            spec,
            targets_per_socket,
        })
    }

    pub fn spec(&self) -> &ScmSpec {
        &self.spec
    }

    /// Bandwidth available to this target for reads, GiB/s.
    pub fn read_share_gib(&self) -> f64 {
        self.spec.read_gib / self.targets_per_socket as f64
    }

    /// Bandwidth available to this target for writes, GiB/s.
    pub fn write_share_gib(&self) -> f64 {
        self.spec.write_gib / self.targets_per_socket as f64
    }

    /// Service time to read `bytes` from this target's media share.
    /// Saturates to [`SimDuration::MAX`] for astronomical byte counts
    /// instead of panicking.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.spec
            .read_latency
            .saturating_add(SimDuration::saturating_from_secs_f64(
                bytes as f64 / (self.read_share_gib() * GIB),
            ))
    }

    /// Service time to persist `bytes` to this target's media share.
    /// The XPLine rounding and the transfer-time conversion both
    /// saturate: `write_time(u64::MAX)` is a (huge) duration, not a
    /// panic.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        let lines = bytes.div_ceil(XPLINE).saturating_mul(XPLINE);
        self.spec
            .write_latency
            .saturating_add(SimDuration::saturating_from_secs_f64(
                lines as f64 / (self.write_share_gib() * GIB),
            ))
    }

    /// Capacity of this target's media slice, in bytes.
    pub fn capacity(&self) -> u64 {
        self.spec.capacity / self.targets_per_socket as u64
    }
}

/// Which tier a write landed in (or a read was served from).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    Scm,
    Nvme,
}

/// Tier-placement policy for a [`TieredMedia`] target.
///
/// `scm_threshold` follows the DAOS VOS rule of thumb: writes at or
/// below the threshold land in the SCM write buffer, larger writes
/// stream straight to NVMe (when an NVMe tier exists). The watermarks
/// drive aggregation hysteresis as fractions of the SCM slice: once
/// occupancy exceeds `high_watermark` the aggregation service starts
/// migrating cold extents to NVMe, and keeps going until occupancy
/// drops below `low_watermark`.
#[derive(Clone, Copy, Debug)]
pub struct TierPolicy {
    /// The NVMe capacity tier; `None` models the paper's SCM-only testbed.
    pub nvme: Option<NvmeSpec>,
    /// Writes of at most this many bytes prefer the SCM write buffer.
    pub scm_threshold: u64,
    /// Aggregation starts above this fraction of SCM capacity.
    pub high_watermark: f64,
    /// Aggregation stops below this fraction of SCM capacity.
    pub low_watermark: f64,
}

impl TierPolicy {
    /// The paper's configuration: SCM only, no NVMe, no aggregation.
    pub fn scm_only() -> Self {
        TierPolicy {
            nvme: None,
            scm_threshold: 4096,
            high_watermark: 0.75,
            low_watermark: 0.50,
        }
    }

    /// Production-style two-tier configuration with default watermarks.
    pub fn tiered() -> Self {
        TierPolicy {
            nvme: Some(NvmeSpec::p4510_gen1()),
            ..Self::scm_only()
        }
    }

    pub fn validate(&self) -> Result<(), MediaConfigError> {
        let (low, high) = (self.low_watermark, self.high_watermark);
        let ok = low > 0.0 && low < high && high <= 1.0 && low.is_finite() && high.is_finite();
        if !ok {
            return Err(MediaConfigError::BadWatermarks { low, high });
        }
        Ok(())
    }
}

impl Default for TierPolicy {
    fn default() -> Self {
        Self::scm_only()
    }
}

/// Every eligible tier of a target is full: `requested` bytes could not
/// be placed. The cluster layer surfaces this as the permanent
/// `DaosError::NoSpace`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MediaFull {
    pub requested: u64,
    pub scm_free: u64,
    pub nvme_free: u64,
}

impl fmt::Display for MediaFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "media full: {} bytes requested, {} free on SCM, {} free on NVMe",
            self.requested, self.scm_free, self.nvme_free
        )
    }
}

/// Receipt for a successful [`TieredMedia::charge_write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteCharge {
    /// The tier the extent landed in.
    pub tier: Tier,
    /// Granule-rounded bytes charged against that tier's occupancy.
    pub charged: u64,
    /// Media service time for the write on that tier.
    pub time: SimDuration,
}

/// One planned aggregation migration step (not yet committed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregationStep {
    /// Source bytes to move out of SCM.
    pub bytes: u64,
    /// Media time to read the extents from the SCM share.
    pub scm_read: SimDuration,
    /// Media time to persist them on the NVMe share.
    pub nvme_write: SimDuration,
}

/// Snapshot of a target's tier-occupancy accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Bytes currently resident in the SCM write buffer.
    pub scm_used: u64,
    /// Bytes currently resident on NVMe.
    pub nvme_used: u64,
    /// Foreground bytes ever landed in SCM (granule-rounded).
    pub scm_landed: u64,
    /// Foreground bytes ever landed directly on NVMe (granule-rounded).
    pub nvme_landed: u64,
    /// Bytes migrated out of SCM by aggregation.
    pub aggregated_out: u64,
    /// Page-rounded bytes landed on NVMe by aggregation.
    pub aggregated_in: u64,
}

impl TierCounts {
    /// The byte-conservation invariant checked by the fuzz harness:
    /// foreground bytes ± migrated bytes account exactly for the tier
    /// occupancy deltas.
    pub fn conserved(&self) -> bool {
        self.scm_landed.checked_sub(self.aggregated_out) == Some(self.scm_used)
            && self.nvme_landed.checked_add(self.aggregated_in) == Some(self.nvme_used)
    }
}

/// One DAOS target's two-tier media: an SCM write-buffer share plus an
/// optional NVMe capacity share, with real occupancy accounting.
///
/// With `policy.nvme == None` and nothing migrated, every timing method
/// returns exactly what the single-tier [`TargetMedia`] returns — the
/// paper-calibrated artifacts are bit-identical across the upgrade.
#[derive(Debug)]
pub struct TieredMedia {
    scm: TargetMedia,
    policy: TierPolicy,
    targets_per_socket: u32,
    scm_used: Cell<u64>,
    nvme_used: Cell<u64>,
    scm_landed: Cell<u64>,
    nvme_landed: Cell<u64>,
    aggregated_out: Cell<u64>,
    aggregated_in: Cell<u64>,
    /// Hysteresis latch: true while occupancy is being drained from the
    /// high watermark down to the low one.
    agg_active: Cell<bool>,
}

impl TieredMedia {
    pub fn new(
        scm: ScmSpec,
        policy: TierPolicy,
        targets_per_socket: u32,
    ) -> Result<Self, MediaConfigError> {
        policy.validate()?;
        Ok(TieredMedia {
            scm: TargetMedia::new(scm, targets_per_socket)?,
            policy,
            targets_per_socket,
            scm_used: Cell::new(0),
            nvme_used: Cell::new(0),
            scm_landed: Cell::new(0),
            nvme_landed: Cell::new(0),
            aggregated_out: Cell::new(0),
            aggregated_in: Cell::new(0),
            agg_active: Cell::new(false),
        })
    }

    /// The paper's SCM-only configuration.
    pub fn scm_only(scm: ScmSpec, targets_per_socket: u32) -> Result<Self, MediaConfigError> {
        Self::new(scm, TierPolicy::scm_only(), targets_per_socket)
    }

    /// The SCM leg (paper-identical single-tier timing).
    pub fn scm(&self) -> &TargetMedia {
        &self.scm
    }

    pub fn policy(&self) -> &TierPolicy {
        &self.policy
    }

    /// Capacity of this target's SCM slice, in bytes.
    pub fn scm_capacity(&self) -> u64 {
        self.scm.capacity()
    }

    /// Capacity of this target's NVMe slice, in bytes (0 when SCM-only).
    pub fn nvme_capacity(&self) -> u64 {
        self.policy
            .nvme
            .map_or(0, |n| n.capacity / self.targets_per_socket as u64)
    }

    fn nvme_read_share_gib(&self, n: &NvmeSpec) -> f64 {
        n.read_gib / self.targets_per_socket as f64
    }

    fn nvme_write_share_gib(&self, n: &NvmeSpec) -> f64 {
        n.write_gib / self.targets_per_socket as f64
    }

    /// Service time to read `bytes` from this target's NVMe share.
    pub fn nvme_read_time(&self, bytes: u64) -> SimDuration {
        let Some(n) = self.policy.nvme.as_ref() else {
            return SimDuration::ZERO;
        };
        n.read_latency
            .saturating_add(SimDuration::saturating_from_secs_f64(
                bytes as f64 / (self.nvme_read_share_gib(n) * GIB),
            ))
    }

    /// Service time to persist `bytes` on this target's NVMe share
    /// (page-rounded, like XPLine rounding on SCM).
    pub fn nvme_write_time(&self, bytes: u64) -> SimDuration {
        let Some(n) = self.policy.nvme.as_ref() else {
            return SimDuration::ZERO;
        };
        let pages = bytes.div_ceil(NVME_PAGE).saturating_mul(NVME_PAGE);
        n.write_latency
            .saturating_add(SimDuration::saturating_from_secs_f64(
                pages as f64 / (self.nvme_write_share_gib(n) * GIB),
            ))
    }

    /// Place a write, charge the receiving tier's occupancy, and return
    /// the tier-correct media service time. Placement follows the DAOS
    /// rule: writes at or below `scm_threshold` prefer the SCM buffer,
    /// larger ones prefer NVMe; a full preferred tier spills to the
    /// other; both full is [`MediaFull`].
    pub fn charge_write(&self, bytes: u64) -> Result<WriteCharge, MediaFull> {
        let scm_need = bytes.div_ceil(XPLINE).saturating_mul(XPLINE);
        let nvme_need = bytes.div_ceil(NVME_PAGE).saturating_mul(NVME_PAGE);
        let scm_fits = self
            .scm_used
            .get()
            .checked_add(scm_need)
            .is_some_and(|used| used <= self.scm_capacity());
        let nvme_fits = self.policy.nvme.is_some()
            && self
                .nvme_used
                .get()
                .checked_add(nvme_need)
                .is_some_and(|used| used <= self.nvme_capacity());

        let prefer_scm = self.policy.nvme.is_none() || bytes <= self.policy.scm_threshold;
        let tier = match (prefer_scm, scm_fits, nvme_fits) {
            (true, true, _) => Tier::Scm,
            (true, false, true) => Tier::Nvme,
            (false, _, true) => Tier::Nvme,
            (false, true, false) => Tier::Scm,
            (_, false, false) => {
                return Err(MediaFull {
                    requested: bytes,
                    scm_free: self.scm_capacity().saturating_sub(self.scm_used.get()),
                    nvme_free: self.nvme_capacity().saturating_sub(self.nvme_used.get()),
                })
            }
        };
        Ok(match tier {
            Tier::Scm => {
                self.scm_used.set(self.scm_used.get() + scm_need);
                self.scm_landed.set(self.scm_landed.get() + scm_need);
                WriteCharge {
                    tier,
                    charged: scm_need,
                    time: self.scm.write_time(bytes),
                }
            }
            Tier::Nvme => {
                self.nvme_used.set(self.nvme_used.get() + nvme_need);
                self.nvme_landed.set(self.nvme_landed.get() + nvme_need);
                WriteCharge {
                    tier,
                    charged: nvme_need,
                    time: self.nvme_write_time(bytes),
                }
            }
        })
    }

    /// Service time to read `bytes` back from this target. The fraction
    /// of the read served from NVMe equals the NVMe share of resident
    /// bytes (deterministic integer split); the remainder pays SCM time.
    /// With nothing on NVMe this is exactly [`TargetMedia::read_time`].
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        let nvme_used = self.nvme_used.get();
        if nvme_used == 0 {
            return self.scm.read_time(bytes);
        }
        let total = self.scm_used.get() + nvme_used;
        let nvme_bytes = ((bytes as u128 * nvme_used as u128) / total as u128) as u64;
        let scm_bytes = bytes - nvme_bytes;
        match (scm_bytes, nvme_bytes) {
            (_, 0) => self.scm.read_time(bytes),
            (0, _) => self.nvme_read_time(bytes),
            _ => self
                .scm
                .read_time(scm_bytes)
                .saturating_add(self.nvme_read_time(nvme_bytes)),
        }
    }

    /// True once SCM occupancy has crossed the high watermark and has
    /// not yet drained below the low one.
    pub fn needs_aggregation(&self) -> bool {
        let used = self.scm_used.get();
        if self.agg_active.get() {
            used > self.low_mark()
        } else {
            used > self.high_mark()
        }
    }

    fn high_mark(&self) -> u64 {
        (self.scm_capacity() as f64 * self.policy.high_watermark) as u64
    }

    fn low_mark(&self) -> u64 {
        (self.scm_capacity() as f64 * self.policy.low_watermark) as u64
    }

    /// Plan the next aggregation migration of at most `chunk_bytes`,
    /// applying watermark hysteresis. Returns `None` when there is no
    /// NVMe tier, occupancy is outside the active band, or NVMe has no
    /// page-aligned headroom left. Planning does not mutate occupancy —
    /// the caller sleeps through the media time (holding the target's
    /// service queue, so migration contends with foreground I/O) and
    /// then calls [`TieredMedia::commit_aggregation`].
    pub fn plan_aggregation(&self, chunk_bytes: u64) -> Option<AggregationStep> {
        self.policy.nvme.as_ref()?;
        let used = self.scm_used.get();
        if !self.agg_active.get() {
            if used <= self.high_mark() {
                return None;
            }
            self.agg_active.set(true);
        } else if used <= self.low_mark() {
            self.agg_active.set(false);
            return None;
        }
        let want = chunk_bytes.min(used.saturating_sub(self.low_mark()));
        // Cap at NVMe's page-aligned headroom so the page-rounded landing
        // always fits.
        let headroom = self.nvme_capacity().saturating_sub(self.nvme_used.get());
        let moved = want.min(headroom / NVME_PAGE * NVME_PAGE);
        if moved == 0 {
            return None;
        }
        Some(AggregationStep {
            bytes: moved,
            scm_read: self.scm.read_time(moved),
            nvme_write: self.nvme_write_time(moved),
        })
    }

    /// Commit a migration planned by [`TieredMedia::plan_aggregation`]:
    /// move up to `bytes` out of SCM into NVMe (page-rounded on the
    /// receiving side) and return the source bytes actually moved.
    /// Clamped against occupancy so interleaved foreground traffic
    /// between plan and commit can never drive a counter negative.
    pub fn commit_aggregation(&self, bytes: u64) -> u64 {
        let moved = bytes.min(self.scm_used.get());
        if moved == 0 {
            return 0;
        }
        let landed = moved
            .div_ceil(NVME_PAGE)
            .saturating_mul(NVME_PAGE)
            .min(self.nvme_capacity().saturating_sub(self.nvme_used.get()));
        self.scm_used.set(self.scm_used.get() - moved);
        self.aggregated_out.set(self.aggregated_out.get() + moved);
        self.nvme_used.set(self.nvme_used.get() + landed);
        self.aggregated_in.set(self.aggregated_in.get() + landed);
        moved
    }

    /// Bytes currently resident in the SCM write buffer.
    pub fn scm_used(&self) -> u64 {
        self.scm_used.get()
    }

    /// Bytes currently resident on NVMe.
    pub fn nvme_used(&self) -> u64 {
        self.nvme_used.get()
    }

    /// Total bytes aggregation has migrated out of SCM.
    pub fn aggregated_bytes(&self) -> u64 {
        self.aggregated_out.get()
    }

    /// Snapshot of the occupancy accounting.
    pub fn tier_counts(&self) -> TierCounts {
        TierCounts {
            scm_used: self.scm_used.get(),
            nvme_used: self.nvme_used.get(),
            scm_landed: self.scm_landed.get(),
            nvme_landed: self.nvme_landed.get(),
            aggregated_out: self.aggregated_out.get(),
            aggregated_in: self.aggregated_in.get(),
        }
    }

    /// The byte-conservation invariant (see [`TierCounts::conserved`]).
    pub fn conservation_ok(&self) -> bool {
        self.tier_counts().conserved()
    }
}

/// Running totals of media operations served by one target. The cluster
/// layer bumps these as it charges service time; snapshots feed the
/// per-engine `media.*` metrics of the observability registry.
#[derive(Default, Debug)]
pub struct MediaTally {
    reads: Cell<u64>,
    writes: Cell<u64>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
}

/// Point-in-time copy of a [`MediaTally`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediaCounts {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl MediaTally {
    pub fn note_read(&self, bytes: u64) {
        self.reads.set(self.reads.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + bytes);
    }

    pub fn note_write(&self, bytes: u64) {
        self.writes.set(self.writes.get() + 1);
        self.bytes_written.set(self.bytes_written.get() + bytes);
    }

    pub fn counts(&self) -> MediaCounts {
        MediaCounts {
            reads: self.reads.get(),
            writes: self.writes.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scm(tps: u32) -> TargetMedia {
        TargetMedia::new(ScmSpec::optane_gen1(), tps).unwrap()
    }

    #[test]
    fn tally_accumulates_ops_and_bytes() {
        let t = MediaTally::default();
        t.note_read(100);
        t.note_write(40);
        t.note_write(60);
        assert_eq!(
            t.counts(),
            MediaCounts {
                reads: 1,
                writes: 2,
                bytes_read: 100,
                bytes_written: 100,
            }
        );
    }

    #[test]
    fn shares_partition_socket_bandwidth() {
        let t = scm(12);
        assert!((t.read_share_gib() * 12.0 - 37.0).abs() < 1e-9);
        assert!((t.write_share_gib() * 12.0 - 13.0).abs() < 1e-9);
    }

    #[test]
    fn read_time_scales_with_bytes() {
        let t = scm(1);
        // 37 GiB at 37 GiB/s = 1 s (+latency).
        let d = t.read_time((37.0 * GIB) as u64);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6, "{d:?}");
        // Zero bytes costs exactly the latency.
        assert_eq!(t.read_time(0), t.spec().read_latency);
    }

    #[test]
    fn write_time_rounds_to_xplines() {
        let t = scm(1);
        // 1 byte is charged as a full 256-byte line.
        assert_eq!(t.write_time(1), t.write_time(256));
        assert!(t.write_time(257) > t.write_time(256));
    }

    #[test]
    fn writes_slower_than_reads() {
        let t = scm(12);
        let b = 1024 * 1024;
        assert!(t.write_time(b) > t.read_time(b));
    }

    #[test]
    fn capacity_divides() {
        let t = scm(12);
        assert_eq!(t.capacity(), 6 * 256 * 1024 * 1024 * 1024 / 12);
    }

    #[test]
    fn zero_targets_is_a_typed_error() {
        assert_eq!(
            TargetMedia::new(ScmSpec::optane_gen1(), 0).unwrap_err(),
            MediaConfigError::ZeroTargets
        );
        assert_eq!(
            TieredMedia::scm_only(ScmSpec::optane_gen1(), 0).unwrap_err(),
            MediaConfigError::ZeroTargets
        );
    }

    #[test]
    fn write_time_u64_max_saturates_instead_of_panicking() {
        // Regression: `div_ceil(XPLINE) * XPLINE` used to overflow u64
        // (debug-panic) for byte counts within XPLINE of u64::MAX.
        let t = scm(12);
        let d = t.write_time(u64::MAX);
        assert!(d > t.write_time(1 << 40));
        assert_eq!(t.write_time(u64::MAX - 255), d);
    }

    #[test]
    fn pathological_bandwidth_saturates_to_max() {
        // A share slow enough that u64::MAX bytes overflows nanoseconds
        // must cap at SimDuration::MAX, not panic in from_secs_f64.
        let slow = ScmSpec {
            read_gib: 1e-12,
            write_gib: 1e-12,
            ..ScmSpec::optane_gen1()
        };
        let t = TargetMedia::new(slow, 1).unwrap();
        assert_eq!(t.read_time(u64::MAX), SimDuration::MAX);
        assert_eq!(t.write_time(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn bad_watermarks_rejected() {
        for (low, high) in [(0.0, 0.5), (0.6, 0.5), (0.5, 1.5), (f64::NAN, 0.9)] {
            let p = TierPolicy {
                low_watermark: low,
                high_watermark: high,
                ..TierPolicy::tiered()
            };
            assert!(
                matches!(
                    TieredMedia::new(ScmSpec::optane_gen1(), p, 1),
                    Err(MediaConfigError::BadWatermarks { .. })
                ),
                "low={low} high={high}"
            );
        }
    }

    fn small_tiered(scm_cap: u64, nvme_cap: u64, threshold: u64) -> TieredMedia {
        let scm = ScmSpec {
            capacity: scm_cap,
            ..ScmSpec::optane_gen1()
        };
        let nvme = NvmeSpec {
            capacity: nvme_cap,
            ..NvmeSpec::p4510_gen1()
        };
        TieredMedia::new(
            scm,
            TierPolicy {
                nvme: Some(nvme),
                scm_threshold: threshold,
                ..TierPolicy::tiered()
            },
            1,
        )
        .unwrap()
    }

    #[test]
    fn placement_follows_threshold() {
        let m = small_tiered(1 << 20, 1 << 20, 4096);
        assert_eq!(m.charge_write(100).unwrap().tier, Tier::Scm);
        assert_eq!(m.charge_write(4096).unwrap().tier, Tier::Scm);
        assert_eq!(m.charge_write(4097).unwrap().tier, Tier::Nvme);
        // SCM occupancy is XPLine-rounded, NVMe page-rounded.
        assert_eq!(m.scm_used(), 256 + 4096);
        assert_eq!(m.nvme_used(), 8192);
        assert!(m.conservation_ok());
    }

    #[test]
    fn scm_only_timing_matches_single_tier_exactly() {
        let m = TieredMedia::scm_only(ScmSpec::optane_gen1(), 12).unwrap();
        let t = scm(12);
        for bytes in [0u64, 1, 256, 4096, 1 << 20, 37 * (1 << 30)] {
            assert_eq!(m.charge_write(bytes).unwrap().time, t.write_time(bytes));
            assert_eq!(m.read_time(bytes), t.read_time(bytes));
        }
    }

    #[test]
    fn full_scm_spills_to_nvme_then_media_full() {
        let m = small_tiered(1024, 8192, 1 << 30);
        // Threshold is huge, so everything prefers SCM.
        assert_eq!(m.charge_write(1024).unwrap().tier, Tier::Scm);
        // SCM now full: spill to NVMe.
        assert_eq!(m.charge_write(1024).unwrap().tier, Tier::Nvme);
        assert_eq!(m.nvme_used(), 4096);
        assert_eq!(m.charge_write(4096).unwrap().tier, Tier::Nvme);
        // Both tiers full now.
        let err = m.charge_write(1).unwrap_err();
        assert_eq!(err.scm_free, 0);
        assert_eq!(err.nvme_free, 0);
        assert!(m.conservation_ok());
    }

    #[test]
    fn scm_only_full_is_media_full() {
        let m = TieredMedia::scm_only(
            ScmSpec {
                capacity: 512,
                ..ScmSpec::optane_gen1()
            },
            1,
        )
        .unwrap();
        assert!(m.charge_write(512).is_ok());
        assert_eq!(
            m.charge_write(1),
            Err(MediaFull {
                requested: 1,
                scm_free: 0,
                nvme_free: 0
            })
        );
    }

    #[test]
    fn aggregation_hysteresis_drains_high_to_low() {
        // 100 KiB SCM slice, watermarks at 75/50 KiB.
        let m = small_tiered(100 * 1024, 1 << 20, 1 << 30);
        let high = (100.0 * 1024.0 * 0.75) as u64;
        // Below the high mark: nothing to do.
        m.charge_write(high - 256).unwrap();
        assert!(m.plan_aggregation(1 << 20).is_none());
        assert!(!m.needs_aggregation());
        // Cross the high mark: aggregation activates and plans down to low.
        m.charge_write(512).unwrap();
        assert!(m.needs_aggregation());
        let step = m.plan_aggregation(1 << 20).unwrap();
        assert_eq!(step.bytes, m.scm_used() - (100 * 1024 / 2));
        assert!(step.scm_read > SimDuration::ZERO);
        assert!(step.nvme_write > SimDuration::ZERO);
        let moved = m.commit_aggregation(step.bytes);
        assert_eq!(moved, step.bytes);
        // At the low mark the latch releases; below-high refills stay idle.
        assert!(m.plan_aggregation(1 << 20).is_none());
        m.charge_write(4096).unwrap();
        assert!(m.plan_aggregation(1 << 20).is_none());
        assert!(m.conservation_ok());
        assert_eq!(m.aggregated_bytes(), moved);
    }

    #[test]
    fn aggregation_chunks_are_bounded() {
        let m = small_tiered(100 * 1024, 1 << 20, 1 << 30);
        m.charge_write(90 * 1024).unwrap();
        let step = m.plan_aggregation(8 * 1024).unwrap();
        assert_eq!(step.bytes, 8 * 1024);
        m.commit_aggregation(step.bytes);
        // Still above low: the next plan continues the drain.
        assert!(m.plan_aggregation(8 * 1024).is_some());
        assert!(m.conservation_ok());
    }

    #[test]
    fn aggregation_without_nvme_is_none() {
        let m = TieredMedia::scm_only(
            ScmSpec {
                capacity: 1024,
                ..ScmSpec::optane_gen1()
            },
            1,
        )
        .unwrap();
        m.charge_write(1024).unwrap();
        assert!(m.plan_aggregation(1 << 20).is_none());
    }

    #[test]
    fn aggregation_respects_nvme_headroom() {
        // NVMe can only take one page.
        let m = small_tiered(100 * 1024, 4096, 1 << 30);
        m.charge_write(90 * 1024).unwrap();
        let step = m.plan_aggregation(1 << 20).unwrap();
        assert_eq!(step.bytes, 4096);
        m.commit_aggregation(step.bytes);
        // NVMe now full: no further migration.
        assert!(m.plan_aggregation(1 << 20).is_none());
        assert!(m.conservation_ok());
    }

    #[test]
    fn reads_pay_nvme_time_in_occupancy_proportion() {
        let m = small_tiered(1 << 20, 1 << 20, 4096);
        let bytes = 1 << 16;
        // All data in SCM: read is pure SCM time.
        m.charge_write(4096).unwrap();
        let scm_only = m.read_time(bytes);
        assert_eq!(scm_only, m.scm().read_time(bytes));
        // Push a large extent to NVMe: reads now pay mostly NVMe time.
        m.charge_write(1 << 18).unwrap();
        let mixed = m.read_time(bytes);
        assert!(mixed > scm_only, "{mixed:?} vs {scm_only:?}");
        // Deterministic: same occupancy, same split.
        assert_eq!(m.read_time(bytes), mixed);
    }

    #[test]
    fn commit_clamps_against_occupancy() {
        let m = small_tiered(1 << 20, 1 << 20, 1 << 30);
        m.charge_write(1000).unwrap();
        // Asking to move more than resident moves only what's there.
        assert_eq!(m.commit_aggregation(u64::MAX), 1024);
        assert_eq!(m.scm_used(), 0);
        assert!(m.conservation_ok());
    }

    #[test]
    fn nvme_write_time_pages_round() {
        let m = small_tiered(1 << 20, 1 << 20, 0);
        assert_eq!(m.nvme_write_time(1), m.nvme_write_time(4096));
        assert!(m.nvme_write_time(4097) > m.nvme_write_time(4096));
    }
}
