//! # daosim-media — storage-class-memory timing model
//!
//! Models the persistent-memory media of a NEXTGenIO-style node: six
//! first-generation Intel Optane DC Persistent Memory Modules per socket,
//! configured AppDirect-interleaved, with no NVMe tier (as in the paper).
//!
//! The model is deliberately simple: a socket's interleaved region has an
//! aggregate read and write bandwidth and a fixed access latency; a DAOS
//! *target* owns a static `1/targets` share of its socket's bandwidth
//! (matching DAOS's target-per-dedicated-thread-group design). Media
//! access time for a request is `latency + bytes / target_share`.
//! Contention between targets of one engine is therefore captured by the
//! static partition; queueing *within* a target is modelled by the
//! caller's per-target FIFO service queue.
//!
//! The numbers are per-socket aggregates consistent with published Optane
//! gen-1 measurements (~6 GB/s read / ~2.2 GB/s write per DIMM, ×6
//! interleaved, minus interleaving overheads).

use std::cell::Cell;

use daosim_kernel::SimDuration;

/// One GiB in bytes, as a float.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Optane writes happen internally at 256-byte "XPLine" granularity;
/// sub-line updates pay a read-modify-write. We fold that into latency,
/// but expose the constant for documentation and capacity rounding.
pub const XPLINE: u64 = 256;

/// Media characteristics of one socket's interleaved SCM region.
#[derive(Clone, Copy, Debug)]
pub struct ScmSpec {
    /// Aggregate sequential read bandwidth per socket, GiB/s.
    pub read_gib: f64,
    /// Aggregate sequential write bandwidth per socket, GiB/s.
    pub write_gib: f64,
    /// Read access latency (media + controller).
    pub read_latency: SimDuration,
    /// Write (ADR-flush visible) latency.
    pub write_latency: SimDuration,
    /// Capacity per socket in bytes (6 × 256 GiB on NEXTGenIO).
    pub capacity: u64,
}

impl ScmSpec {
    /// First-generation Optane DCPMM, 6 × 256 GiB interleaved per socket.
    pub fn optane_gen1() -> Self {
        ScmSpec {
            read_gib: 37.0,
            write_gib: 13.0,
            read_latency: SimDuration::from_nanos(320),
            write_latency: SimDuration::from_nanos(100),
            capacity: 6 * 256 * 1024 * 1024 * 1024,
        }
    }
}

impl Default for ScmSpec {
    fn default() -> Self {
        Self::optane_gen1()
    }
}

/// The static bandwidth share of one DAOS target within a socket region.
#[derive(Clone, Copy, Debug)]
pub struct TargetMedia {
    spec: ScmSpec,
    targets_per_socket: u32,
}

impl TargetMedia {
    pub fn new(spec: ScmSpec, targets_per_socket: u32) -> Self {
        assert!(targets_per_socket > 0, "need at least one target");
        TargetMedia {
            spec,
            targets_per_socket,
        }
    }

    pub fn spec(&self) -> &ScmSpec {
        &self.spec
    }

    /// Bandwidth available to this target for reads, GiB/s.
    pub fn read_share_gib(&self) -> f64 {
        self.spec.read_gib / self.targets_per_socket as f64
    }

    /// Bandwidth available to this target for writes, GiB/s.
    pub fn write_share_gib(&self) -> f64 {
        self.spec.write_gib / self.targets_per_socket as f64
    }

    /// Service time to read `bytes` from this target's media share.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.spec.read_latency
            + SimDuration::from_secs_f64(bytes as f64 / (self.read_share_gib() * GIB))
    }

    /// Service time to persist `bytes` to this target's media share.
    pub fn write_time(&self, bytes: u64) -> SimDuration {
        let lines = bytes.div_ceil(XPLINE) * XPLINE;
        self.spec.write_latency
            + SimDuration::from_secs_f64(lines as f64 / (self.write_share_gib() * GIB))
    }

    /// Capacity of this target's media slice, in bytes.
    pub fn capacity(&self) -> u64 {
        self.spec.capacity / self.targets_per_socket as u64
    }
}

/// Running totals of media operations served by one target. The cluster
/// layer bumps these as it charges service time; snapshots feed the
/// per-engine `media.*` metrics of the observability registry.
#[derive(Default, Debug)]
pub struct MediaTally {
    reads: Cell<u64>,
    writes: Cell<u64>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
}

/// Point-in-time copy of a [`MediaTally`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediaCounts {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

impl MediaTally {
    pub fn note_read(&self, bytes: u64) {
        self.reads.set(self.reads.get() + 1);
        self.bytes_read.set(self.bytes_read.get() + bytes);
    }

    pub fn note_write(&self, bytes: u64) {
        self.writes.set(self.writes.get() + 1);
        self.bytes_written.set(self.bytes_written.get() + bytes);
    }

    pub fn counts(&self) -> MediaCounts {
        MediaCounts {
            reads: self.reads.get(),
            writes: self.writes.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_ops_and_bytes() {
        let t = MediaTally::default();
        t.note_read(100);
        t.note_write(40);
        t.note_write(60);
        assert_eq!(
            t.counts(),
            MediaCounts {
                reads: 1,
                writes: 2,
                bytes_read: 100,
                bytes_written: 100,
            }
        );
    }

    #[test]
    fn shares_partition_socket_bandwidth() {
        let t = TargetMedia::new(ScmSpec::optane_gen1(), 12);
        assert!((t.read_share_gib() * 12.0 - 37.0).abs() < 1e-9);
        assert!((t.write_share_gib() * 12.0 - 13.0).abs() < 1e-9);
    }

    #[test]
    fn read_time_scales_with_bytes() {
        let t = TargetMedia::new(ScmSpec::optane_gen1(), 1);
        // 37 GiB at 37 GiB/s = 1 s (+latency).
        let d = t.read_time((37.0 * GIB) as u64);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-6, "{d:?}");
        // Zero bytes costs exactly the latency.
        assert_eq!(t.read_time(0), t.spec().read_latency);
    }

    #[test]
    fn write_time_rounds_to_xplines() {
        let t = TargetMedia::new(ScmSpec::optane_gen1(), 1);
        // 1 byte is charged as a full 256-byte line.
        assert_eq!(t.write_time(1), t.write_time(256));
        assert!(t.write_time(257) > t.write_time(256));
    }

    #[test]
    fn writes_slower_than_reads() {
        let t = TargetMedia::new(ScmSpec::optane_gen1(), 12);
        let b = 1024 * 1024;
        assert!(t.write_time(b) > t.read_time(b));
    }

    #[test]
    fn capacity_divides() {
        let t = TargetMedia::new(ScmSpec::optane_gen1(), 12);
        assert_eq!(t.capacity(), 6 * 256 * 1024 * 1024 * 1024 / 12);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn zero_targets_panics() {
        let _ = TargetMedia::new(ScmSpec::optane_gen1(), 0);
    }
}
