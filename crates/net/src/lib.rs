//! # daosim-net — flow-level network model
//!
//! A fluid (flow-level) network simulator with max-min fair bandwidth
//! sharing, shaped after the NEXTGenIO fabric the paper benchmarks on:
//! dual-socket nodes, one OmniPath adapter per socket, dual-rail switches,
//! and OFI provider profiles for TCP (sockets) and PSM2 (RDMA).
//!
//! Layers:
//! * [`flow`] — generic links, flows, progressive-filling fairness;
//! * [`fabric`] — the NEXTGenIO topology, routing and provider profiles;
//! * [`mpi`] — the point-to-point bandwidth microbenchmark (Table 2).

pub mod fabric;
pub mod flow;
pub mod mpi;

pub use fabric::{Endpoint, Fabric, FabricSpec, ProviderProfile};
pub use flow::{FlowCap, FlowId, FlowNet, LinkId, RouteId, SolverStats, GIB};
