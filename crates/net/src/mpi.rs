//! MPI-style point-to-point bandwidth microbenchmark (paper Table 2).
//!
//! Mirrors the test the authors ran to separate raw fabric behaviour from
//! DAOS behaviour: N process pairs on the first sockets of two nodes
//! stream fixed-size messages to each other, varying the pair count and
//! the transfer size; the reported figure is the aggregate bandwidth at
//! the best-performing transfer size.

use std::cell::Cell;
use std::rc::Rc;

use daosim_kernel::{Sim, SimTime};

use crate::fabric::{Endpoint, Fabric, FabricSpec, ProviderProfile};
use crate::flow::GIB;

/// Configuration for one p2p run.
#[derive(Clone, Copy, Debug)]
pub struct MpiP2pConfig {
    pub provider: ProviderProfile,
    pub pairs: usize,
    pub msg_bytes: u64,
    /// Messages sent per pair (back-to-back, as MPI bandwidth tests do).
    pub messages: u32,
}

/// Result of one p2p run.
#[derive(Clone, Copy, Debug)]
pub struct MpiP2pResult {
    pub aggregate_gib_s: f64,
    pub wall_secs: f64,
}

/// Runs the pairwise streaming benchmark on a fresh two-node fabric.
pub fn run_p2p(cfg: MpiP2pConfig) -> MpiP2pResult {
    assert!(cfg.pairs > 0 && cfg.messages > 0);
    let sim = Sim::new();
    let fabric = Rc::new(Fabric::new(&sim, FabricSpec::new(2, cfg.provider)));
    let t_end: Rc<Cell<SimTime>> = Rc::new(Cell::new(SimTime::ZERO));
    for _ in 0..cfg.pairs {
        let fabric = Rc::clone(&fabric);
        let sim2 = sim.clone();
        let t_end = Rc::clone(&t_end);
        sim.spawn(async move {
            let src = Endpoint::new(0, 0);
            let dst = Endpoint::new(1, 0);
            // Intern the route and cap once; every message then starts its
            // flow through the interned-route fast path.
            let route = fabric.route_id(src, dst);
            let cap = fabric.flow_cap(src, dst);
            let net = fabric.net().clone();
            for _ in 0..cfg.messages {
                sim2.sleep(fabric.msg_latency()).await;
                net.transfer_interned(route, cfg.msg_bytes, cap).await;
            }
            t_end.set(t_end.get().max(sim2.now()));
        });
    }
    sim.run().expect_quiescent();
    let wall = t_end.get().as_secs_f64();
    let total = cfg.pairs as f64 * cfg.messages as f64 * cfg.msg_bytes as f64;
    MpiP2pResult {
        aggregate_gib_s: total / GIB / wall,
        wall_secs: wall,
    }
}

/// Sweeps transfer sizes for a pair count and returns
/// `(optimal_size_bytes, best aggregate GiB/s)` — one row of Table 2.
pub fn best_over_sizes(
    provider: ProviderProfile,
    pairs: usize,
    sizes: &[u64],
    messages: u32,
) -> (u64, f64) {
    let mut best = (0u64, 0.0f64);
    for &s in sizes {
        let r = run_p2p(MpiP2pConfig {
            provider,
            pairs,
            msg_bytes: s,
            messages,
        });
        if r.aggregate_gib_s > best.1 {
            best = (s, r.aggregate_gib_s);
        }
    }
    best
}

/// The transfer sizes the paper sweeps (powers of two up to 32 MiB).
pub fn table2_sizes() -> Vec<u64> {
    (0..=25)
        .map(|p| 1u64 << p)
        .filter(|&s| s >= 64 * 1024)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn tcp_single_pair_approaches_stream_cap() {
        let r = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 1,
            msg_bytes: 2 * MIB,
            messages: 50,
        });
        assert!(
            (2.7..=3.1).contains(&r.aggregate_gib_s),
            "got {}",
            r.aggregate_gib_s
        );
    }

    #[test]
    fn psm2_single_pair_approaches_rdma_cap() {
        let r = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::psm2(),
            pairs: 1,
            msg_bytes: 8 * MIB,
            messages: 50,
        });
        assert!(
            (11.0..=12.1).contains(&r.aggregate_gib_s),
            "got {}",
            r.aggregate_gib_s
        );
    }

    #[test]
    fn tcp_pairs_scale_sublinearly_to_host_cap() {
        let one = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 1,
            msg_bytes: 2 * MIB,
            messages: 30,
        })
        .aggregate_gib_s;
        let two = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 2,
            msg_bytes: 2 * MIB,
            messages: 30,
        })
        .aggregate_gib_s;
        let eight = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 8,
            msg_bytes: 16 * MIB,
            messages: 30,
        })
        .aggregate_gib_s;
        assert!(two > one, "2 pairs ({two}) must beat 1 pair ({one})");
        assert!(
            two < 2.0 * one * 0.95,
            "2 pairs ({two}) must scale sub-linearly vs {one}"
        );
        assert!(
            (8.5..=9.7).contains(&eight),
            "8 pairs should saturate near the host cap, got {eight}"
        );
    }

    #[test]
    fn small_messages_are_latency_bound() {
        let small = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 1,
            msg_bytes: 64 * 1024,
            messages: 50,
        })
        .aggregate_gib_s;
        let large = run_p2p(MpiP2pConfig {
            provider: ProviderProfile::tcp(),
            pairs: 1,
            msg_bytes: 4 * MIB,
            messages: 50,
        })
        .aggregate_gib_s;
        assert!(small < large * 0.8, "small {small} vs large {large}");
    }

    #[test]
    fn best_over_sizes_finds_a_positive_optimum() {
        let (size, bw) = best_over_sizes(
            ProviderProfile::tcp(),
            1,
            &[256 * 1024, MIB, 2 * MIB, 4 * MIB],
            20,
        );
        assert!(size >= 256 * 1024 && bw > 2.0);
    }
}
