//! NEXTGenIO-shaped fabric topology.
//!
//! The research system the paper benchmarks on has dual-socket nodes, one
//! OmniPath adapter per socket (12.5 GiB/s raw), and a *dual-rail* fabric:
//! socket-0 adapters hang off one switch, socket-1 adapters off another.
//! A flow therefore travels on the rail of its source socket and, when the
//! destination endpoint lives on the other socket, crosses the destination
//! node's inter-socket (UPI) link — which is exactly the contention the
//! paper observes between engines "communicating through a single
//! interface on one socket".
//!
//! Each node also has a *host* link modelling the shared per-node cost of
//! moving bytes through the OS network stack; under the OFI TCP provider
//! this saturates near 9.7 GiB/s (cf. the paper's Table 2, where 8 process
//! pairs peak at 9.5 GiB/s), while PSM2's RDMA path makes it non-binding.

use std::cell::RefCell;
use std::collections::HashMap;

use daosim_kernel::sync::OneshotReceiver;
use daosim_kernel::{Sim, SimDuration};

use crate::flow::{FlowCap, FlowNet, LinkId, RouteId};

/// A communication endpoint: one socket of one node (i.e. one adapter).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Endpoint {
    pub node: u16,
    pub socket: u8,
}

impl Endpoint {
    pub fn new(node: u16, socket: u8) -> Self {
        Endpoint { node, socket }
    }
}

/// Calibrated constants for an OFI fabric provider.
#[derive(Clone, Copy, Debug)]
pub struct ProviderProfile {
    pub name: &'static str,
    /// Single-stream bandwidth cap, GiB/s. TCP on NEXTGenIO peaks at
    /// 3.1 GiB/s per stream; PSM2 (RDMA) reaches 12.1 GiB/s.
    pub per_flow_cap_gib: f64,
    /// Sub-linearity exponent for parallel streams between one host pair
    /// (Table 2: 2 pairs -> 4.1 GiB/s, not 6.2). Zero for RDMA.
    pub stream_alpha: f64,
    /// One-way small-message latency (includes software overhead).
    pub msg_latency: SimDuration,
    /// Raw adapter bandwidth, GiB/s.
    pub nic_raw_gib: f64,
    /// Per-node network-stack ceiling across both sockets, GiB/s.
    pub host_cap_gib: f64,
    /// Inter-socket link bandwidth, GiB/s.
    pub upi_cap_gib: f64,
}

impl ProviderProfile {
    /// OFI TCP provider (sockets; the configuration used for most of the
    /// paper's runs because PSM2 could not drive dual-rail DAOS).
    pub fn tcp() -> Self {
        ProviderProfile {
            name: "tcp",
            per_flow_cap_gib: 3.1,
            stream_alpha: 0.45,
            msg_latency: SimDuration::from_micros(30),
            nic_raw_gib: 12.5,
            host_cap_gib: 9.7,
            upi_cap_gib: 20.0,
        }
    }

    /// OFI PSM2 provider (RDMA over OmniPath; single-rail only).
    pub fn psm2() -> Self {
        ProviderProfile {
            name: "psm2",
            per_flow_cap_gib: 12.1,
            stream_alpha: 0.0,
            msg_latency: SimDuration::from_micros(5),
            nic_raw_gib: 12.5,
            host_cap_gib: 24.0,
            upi_cap_gib: 20.0,
        }
    }

    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "tcp" => Some(Self::tcp()),
            "psm2" => Some(Self::psm2()),
            _ => None,
        }
    }
}

/// Static description of a fabric to build.
#[derive(Clone, Copy, Debug)]
pub struct FabricSpec {
    pub nodes: u16,
    pub sockets_per_node: u8,
    pub provider: ProviderProfile,
    /// Scale factor on every node's host-link capacity; lets a deployment
    /// model the efficiency loss observed on multi-node server sets.
    pub host_efficiency: f64,
}

impl FabricSpec {
    pub fn new(nodes: u16, provider: ProviderProfile) -> Self {
        FabricSpec {
            nodes,
            sockets_per_node: 2,
            provider,
            host_efficiency: 1.0,
        }
    }
}

struct NodeLinks {
    /// Raw adapter links, one (tx, rx) pair per socket.
    tx_raw: Vec<LinkId>,
    rx_raw: Vec<LinkId>,
    host: LinkId,
    upi: LinkId,
}

/// The built fabric: per-node links plus routing.
pub struct Fabric {
    spec: FabricSpec,
    net: FlowNet,
    nodes: Vec<NodeLinks>,
    /// Endpoint-pair routes interned in the flow network, so repeated
    /// transfers between the same endpoints skip route construction.
    route_ids: RefCell<HashMap<(Endpoint, Endpoint), RouteId>>,
}

impl Fabric {
    pub fn new(sim: &Sim, spec: FabricSpec) -> Self {
        Self::build(spec, FlowNet::new(sim))
    }

    /// A fabric whose flow network uses the reference per-flow solver
    /// (baseline for benchmarks; see [`FlowNet::new_naive`]).
    #[cfg(any(test, feature = "naive-flow"))]
    pub fn new_naive(sim: &Sim, spec: FabricSpec) -> Self {
        Self::build(spec, FlowNet::new_naive(sim))
    }

    fn build(spec: FabricSpec, net: FlowNet) -> Self {
        assert!(spec.nodes > 0 && spec.sockets_per_node > 0);
        assert!(spec.host_efficiency > 0.0 && spec.host_efficiency <= 1.0);
        let p = &spec.provider;
        let nodes = (0..spec.nodes)
            .map(|_| NodeLinks {
                tx_raw: (0..spec.sockets_per_node)
                    .map(|_| net.add_link(p.nic_raw_gib))
                    .collect(),
                rx_raw: (0..spec.sockets_per_node)
                    .map(|_| net.add_link(p.nic_raw_gib))
                    .collect(),
                host: net.add_link(p.host_cap_gib * spec.host_efficiency),
                upi: net.add_link(p.upi_cap_gib),
            })
            .collect();
        Fabric {
            spec,
            net,
            nodes,
            route_ids: RefCell::new(HashMap::new()),
        }
    }

    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    pub fn provider(&self) -> &ProviderProfile {
        &self.spec.provider
    }

    /// The underlying flow network, for composing routes with extra links
    /// (e.g. software-stack capacities added by the DAOS service model).
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    fn check(&self, e: Endpoint) {
        assert!(
            e.node < self.spec.nodes && e.socket < self.spec.sockets_per_node,
            "endpoint {e:?} outside fabric spec {:?}",
            (self.spec.nodes, self.spec.sockets_per_node)
        );
    }

    /// Raw network route from `src` to `dst`. Node-local transfers use at
    /// most the UPI link; remote ones travel on the source socket's rail
    /// and cross the destination's UPI when the rails mismatch.
    pub fn route(&self, src: Endpoint, dst: Endpoint) -> Vec<LinkId> {
        self.check(src);
        self.check(dst);
        if src.node == dst.node {
            return if src.socket != dst.socket {
                vec![self.nodes[src.node as usize].upi]
            } else {
                Vec::new()
            };
        }
        let rail = src.socket.min(self.spec.sockets_per_node - 1);
        let s = &self.nodes[src.node as usize];
        let d = &self.nodes[dst.node as usize];
        let mut route = vec![
            s.tx_raw[src.socket as usize],
            s.host,
            d.rx_raw[rail as usize],
            d.host,
        ];
        if dst.socket != rail {
            route.push(d.upi);
        }
        route
    }

    /// Cap descriptor for a flow between two nodes under this provider:
    /// single-stream cap plus host-pair group scaling.
    pub fn flow_cap(&self, src: Endpoint, dst: Endpoint) -> FlowCap {
        let p = &self.spec.provider;
        FlowCap {
            base_gib: p.per_flow_cap_gib,
            group: if src.node == dst.node {
                None
            } else {
                Some(((src.node as u64) << 17) | ((dst.node as u64) << 1) | 1)
            },
            alpha: p.stream_alpha,
        }
    }

    /// Interned id of the raw route from `src` to `dst`, cached per
    /// endpoint pair.
    pub fn route_id(&self, src: Endpoint, dst: Endpoint) -> RouteId {
        if let Some(&id) = self.route_ids.borrow().get(&(src, dst)) {
            return id;
        }
        let id = self.net.intern_route(&self.route(src, dst));
        self.route_ids.borrow_mut().insert((src, dst), id);
        id
    }

    /// Starts a bulk transfer (bandwidth component only; the caller
    /// accounts message latency explicitly where the protocol dictates).
    pub fn transfer(&self, src: Endpoint, dst: Endpoint, bytes: u64) -> OneshotReceiver<()> {
        let cap = self.flow_cap(src, dst);
        self.net
            .transfer_interned(self.route_id(src, dst), bytes, cap)
    }

    /// Bulk transfer over the raw route extended with caller-provided
    /// links (software-stack capacities etc.).
    pub fn transfer_via(
        &self,
        src: Endpoint,
        dst: Endpoint,
        extra: &[LinkId],
        bytes: u64,
    ) -> OneshotReceiver<()> {
        let mut route = self.route(src, dst);
        route.extend_from_slice(extra);
        let cap = self.flow_cap(src, dst);
        self.net.transfer(&route, bytes, cap)
    }

    pub fn msg_latency(&self) -> SimDuration {
        self.spec.provider.msg_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fab(nodes: u16) -> (Sim, Fabric) {
        let sim = Sim::new();
        let f = Fabric::new(&sim, FabricSpec::new(nodes, ProviderProfile::tcp()));
        (sim, f)
    }

    #[test]
    fn same_socket_route_is_free() {
        let (_s, f) = fab(2);
        assert!(f.route(Endpoint::new(0, 0), Endpoint::new(0, 0)).is_empty());
    }

    #[test]
    fn cross_socket_local_route_uses_upi_only() {
        let (_s, f) = fab(2);
        let r = f.route(Endpoint::new(0, 0), Endpoint::new(0, 1));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn same_rail_remote_route_has_four_links() {
        let (_s, f) = fab(2);
        let r = f.route(Endpoint::new(0, 1), Endpoint::new(1, 1));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn cross_rail_remote_route_crosses_upi() {
        let (_s, f) = fab(2);
        let r = f.route(Endpoint::new(0, 0), Endpoint::new(1, 1));
        assert_eq!(r.len(), 5);
        let upi = r[4];
        // The UPI link crossed must belong to the *destination* node.
        let r2 = f.route(Endpoint::new(1, 0), Endpoint::new(1, 1));
        assert_eq!(r2, vec![upi]);
    }

    #[test]
    fn single_stream_hits_per_flow_cap() {
        let (sim, f) = fab(2);
        let bytes = (3.1 * crate::flow::GIB) as u64;
        let f = std::rc::Rc::new(f);
        let fc = std::rc::Rc::clone(&f);
        let end = sim.block_on(async move {
            fc.transfer(Endpoint::new(0, 0), Endpoint::new(1, 0), bytes)
                .await;
        });
        // 3.1 GiB at 3.1 GiB/s = 1s.
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn psm2_stream_is_faster_than_tcp() {
        let sim = Sim::new();
        let f = Fabric::new(&sim, FabricSpec::new(2, ProviderProfile::psm2()));
        let f = std::rc::Rc::new(f);
        let bytes = (12.1 * crate::flow::GIB) as u64;
        let fc = std::rc::Rc::clone(&f);
        let end = sim.block_on(async move {
            fc.transfer(Endpoint::new(0, 0), Endpoint::new(1, 0), bytes)
                .await;
        });
        assert!((end.as_secs_f64() - 1.0).abs() < 1e-6, "{end}");
    }

    #[test]
    fn host_efficiency_scales_node_ceiling() {
        let sim = Sim::new();
        let mut spec = FabricSpec::new(2, ProviderProfile::tcp());
        spec.host_efficiency = 0.5;
        let f = std::rc::Rc::new(Fabric::new(&sim, spec));
        // Saturate with many streams: aggregate should approach
        // host_cap * 0.5 = 4.85 GiB/s, so 4.85 GiB across 8 flows ~ 1s.
        let per_flow = (4.85 * crate::flow::GIB / 8.0) as u64;
        for i in 0..8u8 {
            let f = std::rc::Rc::clone(&f);
            sim.spawn(async move {
                f.transfer(Endpoint::new(0, i % 2), Endpoint::new(1, i % 2), per_flow)
                    .await;
            });
        }
        let end = sim.run().expect_quiescent();
        assert!(
            (end.as_secs_f64() - 1.0).abs() < 0.05,
            "end {end} (expected ~1s at halved host cap)"
        );
    }

    #[test]
    #[should_panic(expected = "outside fabric spec")]
    fn out_of_range_endpoint_panics() {
        let (_s, f) = fab(1);
        let _ = f.route(Endpoint::new(0, 0), Endpoint::new(1, 0));
    }
}
