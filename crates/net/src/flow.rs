//! Fluid-flow bandwidth model with max-min fair sharing.
//!
//! Transfers are modelled as *flows*: a byte count draining over a route of
//! capacity-limited links. Whenever the flow population changes, every
//! flow's rate is recomputed by progressive filling (max-min fairness with
//! per-flow rate caps), remaining byte counts are brought up to date, and a
//! single event is scheduled for the earliest completion. This is the
//! classic fluid approximation used by flow-level network simulators: it
//! captures saturation, sharing and crossover behaviour without paying for
//! per-packet events.
//!
//! Per-flow caps model the single-stream limit of a fabric provider (e.g.
//! one TCP stream tops out near 3.1 GiB/s on NEXTGenIO's OmniPath while
//! PSM2 RDMA reaches 12.1 GiB/s). Flows may additionally carry a *cap
//! group*: flows in the same group (same host pair, in practice) see their
//! cap scaled by `count^-alpha`, reproducing the measured sub-linear
//! scaling of parallel TCP streams between one pair of hosts.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use daosim_kernel::sync::{oneshot, OneshotReceiver, OneshotSender};
use daosim_kernel::{Sim, SimDuration, SimTime};

/// One GiB in bytes, as a float; all public bandwidths are GiB/s.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A byte count below which a flow is considered drained (guards float
/// rounding at completion events).
const DRAIN_EPS: f64 = 0.5;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

/// Per-flow rate constraints.
#[derive(Clone, Copy, Debug)]
pub struct FlowCap {
    /// Single-flow rate cap in GiB/s (`f64::INFINITY` for none).
    pub base_gib: f64,
    /// Optional cap group (e.g. a host pair). Flows sharing a group get
    /// `base * count^-alpha` each, modelling parallel-stream inefficiency.
    pub group: Option<u64>,
    /// Sub-linearity exponent for grouped flows; 0 disables the effect.
    pub alpha: f64,
}

impl FlowCap {
    pub fn unlimited() -> Self {
        FlowCap {
            base_gib: f64::INFINITY,
            group: None,
            alpha: 0.0,
        }
    }

    pub fn capped(base_gib: f64) -> Self {
        FlowCap {
            base_gib,
            group: None,
            alpha: 0.0,
        }
    }
}

struct Flow {
    route: Vec<LinkId>,
    remaining: f64, // bytes
    rate: f64,      // bytes/s, set by the last recompute
    cap: FlowCap,
    done: Option<OneshotSender<()>>,
}

struct Inner {
    links: Vec<f64>, // capacity in bytes/s
    // Ordered so same-instant completions fire deterministically.
    flows: BTreeMap<FlowId, Flow>,
    group_counts: HashMap<u64, u32>,
    next_flow: u64,
    epoch: u64,
    last_update: SimTime,
    /// Cumulative bytes delivered, for debugging/accounting.
    delivered: f64,
}

/// The flow network. Cheap to clone; all clones share one state.
///
/// ```
/// use daosim_kernel::Sim;
/// use daosim_net::{FlowCap, FlowNet};
///
/// let sim = Sim::new();
/// let net = FlowNet::new(&sim);
/// let link = net.add_link(2.0); // 2 GiB/s
/// let n = net.clone();
/// let end = sim.block_on(async move {
///     // 2 GiB over a 2 GiB/s link: one second.
///     n.transfer(&[link], 2 << 30, FlowCap::unlimited()).await;
/// });
/// assert!((end.as_secs_f64() - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct FlowNet {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl FlowNet {
    pub fn new(sim: &Sim) -> Self {
        FlowNet {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                links: Vec::new(),
                flows: BTreeMap::new(),
                group_counts: HashMap::new(),
                next_flow: 0,
                epoch: 0,
                last_update: SimTime::ZERO,
                delivered: 0.0,
            })),
        }
    }

    /// Adds a link with the given capacity (GiB/s) and returns its id.
    /// Links can be added at any time; capacities are fixed thereafter.
    pub fn add_link(&self, cap_gib: f64) -> LinkId {
        assert!(cap_gib > 0.0, "link capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(cap_gib * GIB);
        id
    }

    pub fn link_count(&self) -> usize {
        self.inner.borrow().links.len()
    }

    pub fn active_flows(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Total bytes delivered by completed and in-progress flows.
    pub fn bytes_delivered(&self) -> f64 {
        let inner = self.inner.borrow();
        inner.delivered
    }

    /// Starts a transfer of `bytes` over `route` and returns a future that
    /// resolves when the last byte has drained. A zero-byte transfer (or an
    /// empty route, i.e. a node-local copy) completes immediately.
    pub fn transfer(&self, route: &[LinkId], bytes: u64, cap: FlowCap) -> OneshotReceiver<()> {
        let (tx, rx) = oneshot();
        if bytes == 0 || route.is_empty() {
            tx.send(());
            return rx;
        }
        {
            let mut inner = self.inner.borrow_mut();
            let now = self.sim.now();
            inner.advance_to(now);
            for l in route {
                assert!(
                    (l.0 as usize) < inner.links.len(),
                    "route references unknown link {l:?}"
                );
            }
            if let Some(g) = cap.group {
                *inner.group_counts.entry(g).or_insert(0) += 1;
            }
            let id = FlowId(inner.next_flow);
            inner.next_flow += 1;
            inner.flows.insert(
                id,
                Flow {
                    route: route.to_vec(),
                    remaining: bytes as f64,
                    rate: 0.0,
                    cap,
                    done: Some(tx),
                },
            );
        }
        self.settle();
        rx
    }

    /// Brings remaining byte counts up to date, completes drained flows,
    /// recomputes fair rates and schedules the next completion event.
    fn settle(&self) {
        let now = self.sim.now();
        let mut finished: Vec<OneshotSender<()>> = Vec::new();
        let next: Option<SimDuration>;
        let epoch;
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance_to(now);
            // Complete drained flows.
            let drained: Vec<FlowId> = inner
                .flows
                .iter()
                .filter(|(_, f)| f.remaining <= DRAIN_EPS)
                .map(|(id, _)| *id)
                .collect();
            for id in drained {
                let mut f = inner.flows.remove(&id).expect("drained flow vanished");
                if let Some(g) = f.cap.group {
                    let c = inner
                        .group_counts
                        .get_mut(&g)
                        .expect("group count missing");
                    *c -= 1;
                    if *c == 0 {
                        inner.group_counts.remove(&g);
                    }
                }
                if let Some(tx) = f.done.take() {
                    finished.push(tx);
                }
            }
            inner.recompute();
            inner.epoch += 1;
            epoch = inner.epoch;
            next = inner
                .flows
                .values()
                .map(|f| {
                    debug_assert!(f.rate > 0.0, "flow starved by zero rate");
                    SimDuration::from_secs_f64((f.remaining.max(0.0)) / f.rate)
                })
                .min();
        }
        // Fire completions outside the borrow: the woken tasks may start
        // new transfers re-entering this FlowNet.
        for tx in finished {
            tx.send(());
        }
        if let Some(delay) = next {
            let this = self.clone();
            self.sim.schedule_after(delay, move || {
                if this.inner.borrow().epoch == epoch {
                    this.settle();
                }
            });
        }
    }

    /// Current rate of every active flow in GiB/s (diagnostics/tests).
    pub fn snapshot_rates(&self) -> Vec<(Vec<LinkId>, f64)> {
        self.inner
            .borrow()
            .flows
            .values()
            .map(|f| (f.route.clone(), f.rate / GIB))
            .collect()
    }
}

impl Inner {
    /// Drains `rate * dt` bytes from each flow up to `now`.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 {
            return;
        }
        let mut moved = 0.0;
        for f in self.flows.values_mut() {
            let d = (f.rate * dt).min(f.remaining);
            f.remaining -= d;
            moved += d;
        }
        self.delivered += moved;
    }

    /// Progressive-filling max-min fairness with per-flow caps.
    ///
    /// Repeatedly finds the tightest constraint — either a link's equal
    /// share among its unfrozen flows or an individual flow cap — freezes
    /// the flows bound by it, and subtracts their rates from link
    /// residuals. Terminates in at most `#flows` iterations because every
    /// iteration freezes at least one flow.
    fn recompute(&mut self) {
        let nl = self.links.len();
        let mut residual = self.links.clone();
        let mut link_count = vec![0u32; nl];

        // Effective per-flow caps (group scaling applied once up front).
        let ids: Vec<FlowId> = self.flows.keys().copied().collect();
        let mut eff_cap: HashMap<FlowId, f64> = HashMap::with_capacity(ids.len());
        for (&id, f) in &self.flows {
            let mut cap = f.cap.base_gib * GIB;
            if let (Some(g), true) = (f.cap.group, f.cap.alpha > 0.0) {
                let n = *self.group_counts.get(&g).unwrap_or(&1) as f64;
                cap *= n.powf(-f.cap.alpha);
            }
            eff_cap.insert(id, cap);
            for l in &f.route {
                link_count[l.0 as usize] += 1;
            }
        }

        let mut unfrozen: Vec<FlowId> = ids;
        loop {
            if unfrozen.is_empty() {
                break;
            }
            // Tightest link share.
            let mut level = f64::INFINITY;
            for l in 0..nl {
                if link_count[l] > 0 {
                    level = level.min(residual[l] / link_count[l] as f64);
                }
            }
            // Tightest flow cap.
            for id in &unfrozen {
                level = level.min(eff_cap[id]);
            }
            assert!(
                level.is_finite() && level > 0.0,
                "progressive filling found no finite positive level"
            );
            let tol = level * (1.0 + 1e-9);
            // Freeze every flow bound at this level: either its cap is the
            // level, or it crosses a link whose fair share is the level.
            let mut still = Vec::with_capacity(unfrozen.len());
            let mut froze_any = false;
            for id in unfrozen {
                let f = &self.flows[&id];
                let capped = eff_cap[&id] <= tol;
                let link_bound = f
                    .route
                    .iter()
                    .any(|l| residual[l.0 as usize] / link_count[l.0 as usize] as f64 <= tol);
                if capped || link_bound {
                    let rate = if capped { eff_cap[&id] } else { level };
                    for l in &f.route {
                        residual[l.0 as usize] = (residual[l.0 as usize] - rate).max(0.0);
                        link_count[l.0 as usize] -= 1;
                    }
                    self.flows.get_mut(&id).unwrap().rate = rate;
                    froze_any = true;
                } else {
                    still.push(id);
                }
            }
            assert!(froze_any, "progressive filling made no progress");
            unfrozen = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn run_transfer(caps: &[f64], routes: Vec<(Vec<usize>, u64, FlowCap)>) -> Vec<u64> {
        // Returns completion time (ns) per flow, started simultaneously.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
        let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
        for (i, (route, bytes, cap)) in routes.into_iter().enumerate() {
            let route: Vec<LinkId> = route.into_iter().map(|r| links[r]).collect();
            let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
            sim.spawn(async move {
                net.transfer(&route, bytes, cap).await;
                done.borrow_mut().push((i, sim2.now().as_nanos()));
            });
        }
        sim.run().expect_quiescent();
        let mut v = done.borrow().clone();
        v.sort();
        v.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        // 1 GiB over a 1 GiB/s link = 1 second.
        let t = run_transfer(
            &[1.0],
            vec![(vec![0], GIB as u64, FlowCap::unlimited())],
        );
        assert!(
            (t[0] as f64 / 1e9 - 1.0).abs() < 1e-6,
            "1 GiB over 1 GiB/s should take ~1s, got {t:?}"
        );
    }

    #[test]
    fn per_flow_cap_binds_below_link() {
        // 10 GiB/s link, flow capped at 2 GiB/s: 1 GiB takes 0.5s... no, 1/2 s.
        let t = run_transfer(&[10.0], vec![(vec![0], GIB as u64, FlowCap::capped(2.0))]);
        assert!((t[0] as f64 / 1e9 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_link_evenly() {
        // Two equal flows on a 2 GiB/s link: each gets 1 GiB/s.
        let t = run_transfer(
            &[2.0],
            vec![
                (vec![0], GIB as u64, FlowCap::unlimited()),
                (vec![0], GIB as u64, FlowCap::unlimited()),
            ],
        );
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6);
        assert!((t[1] as f64 / 1e9 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_textbook_example() {
        // Link0 cap 10 shared by flows A and B; link1 cap 4 crossed only by
        // B. Max-min: B = 4, A = 6.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l0 = net.add_link(10.0);
        let l1 = net.add_link(4.0);
        let a_rate: Rc<Cell<f64>> = Rc::default();
        let (net2, ar) = (net.clone(), Rc::clone(&a_rate));
        sim.spawn(async move {
            let fa = net2.transfer(&[l0], (10.0 * GIB) as u64, FlowCap::unlimited());
            let fb = net2.transfer(&[l0, l1], (10.0 * GIB) as u64, FlowCap::unlimited());
            // Inspect rates right after both flows are active.
            let rates = net2.snapshot_rates();
            for (route, r) in rates {
                if route.len() == 1 {
                    ar.set(r);
                }
            }
            fa.await;
            fb.await;
        });
        sim.run().expect_quiescent();
        assert!((a_rate.get() - 6.0).abs() < 1e-6, "A got {}", a_rate.get());
    }

    #[test]
    fn arrival_slows_existing_flow() {
        // Flow 1 alone for 0.5 s at 2 GiB/s, then flow 2 arrives and they
        // share 1 GiB/s each. Flow 1 carries 2 GiB total:
        //   0.5s * 2 + t * 1 = 2 GiB -> t = 1s -> completes at 1.5s.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(2.0);
        let t1: Rc<Cell<u64>> = Rc::default();
        let (n1, s1, t1c) = (net.clone(), sim.clone(), Rc::clone(&t1));
        sim.spawn(async move {
            n1.transfer(&[l], (2.0 * GIB) as u64, FlowCap::unlimited()).await;
            t1c.set(s1.now().as_nanos());
        });
        let (n2, s2) = (net.clone(), sim.clone());
        sim.spawn(async move {
            s2.sleep(SimDuration::from_millis(500)).await;
            n2.transfer(&[l], (4.0 * GIB) as u64, FlowCap::unlimited()).await;
        });
        sim.run().expect_quiescent();
        assert!(
            (t1.get() as f64 / 1e9 - 1.5).abs() < 1e-6,
            "flow1 finished at {}",
            t1.get()
        );
    }

    #[test]
    fn departure_speeds_up_survivor() {
        // Both start together on 2 GiB/s: 1 GiB/s each. Small flow (0.5 GiB)
        // leaves at 0.5s; big flow (2 GiB) then runs at 2 GiB/s:
        //   0.5 GiB done, 1.5 GiB left at 2 GiB/s -> +0.75s -> 1.25s total.
        let t = run_transfer(
            &[2.0],
            vec![
                (vec![0], (2.0 * GIB) as u64, FlowCap::unlimited()),
                (vec![0], (0.5 * GIB) as u64, FlowCap::unlimited()),
            ],
        );
        assert!((t[0] as f64 / 1e9 - 1.25).abs() < 1e-6, "{t:?}");
        assert!((t[1] as f64 / 1e9 - 0.5).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn group_alpha_scales_down_parallel_streams() {
        // Two grouped flows with alpha=1: each capped at base/2, so two
        // flows are no faster in aggregate than one.
        let cap = FlowCap {
            base_gib: 2.0,
            group: Some(7),
            alpha: 1.0,
        };
        let t = run_transfer(
            &[100.0],
            vec![
                (vec![0], GIB as u64, cap),
                (vec![0], GIB as u64, cap),
            ],
        );
        // Each runs at 1 GiB/s -> 1 s.
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn group_count_resets_after_drain() {
        // After the first grouped transfer finishes, a new one sees n=1.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(100.0);
        let cap = FlowCap {
            base_gib: 2.0,
            group: Some(1),
            alpha: 1.0,
        };
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let (n, s, tc) = (net.clone(), sim.clone(), Rc::clone(&times));
        sim.spawn(async move {
            n.transfer(&[l], (2.0 * GIB) as u64, cap).await;
            tc.borrow_mut().push(s.now().as_nanos());
            n.transfer(&[l], (2.0 * GIB) as u64, cap).await;
            tc.borrow_mut().push(s.now().as_nanos());
        });
        sim.run().expect_quiescent();
        let t = times.borrow().clone();
        // Each runs alone at the full 2 GiB/s cap: 1 s each.
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
        assert!(((t[1] - t[0]) as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn zero_bytes_completes_instantly() {
        let t = run_transfer(&[1.0], vec![(vec![0], 0, FlowCap::unlimited())]);
        assert_eq!(t, vec![0]);
    }

    #[test]
    fn empty_route_is_local_copy() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let end = sim.block_on({
            let net = net.clone();
            async move {
                net.transfer(&[], 1_000_000, FlowCap::unlimited()).await;
            }
        });
        assert_eq!(end.as_nanos(), 0);
    }

    #[test]
    fn bytes_delivered_accounts_everything() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(1.0);
        for _ in 0..3 {
            let net = net.clone();
            sim.spawn(async move {
                net.transfer(&[l], 1_000_000, FlowCap::unlimited()).await;
            });
        }
        sim.run().expect_quiescent();
        assert!((net.bytes_delivered() - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_route_panics() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        drop(net.transfer(&[LinkId(5)], 10, FlowCap::unlimited()));
    }
}
