//! Fluid-flow bandwidth model with max-min fair sharing.
//!
//! Transfers are modelled as *flows*: a byte count draining over a route of
//! capacity-limited links. Whenever the flow population changes, every
//! flow's rate is recomputed by progressive filling (max-min fairness with
//! per-flow rate caps), remaining byte counts are brought up to date, and a
//! single event is scheduled for the earliest completion. This is the
//! classic fluid approximation used by flow-level network simulators: it
//! captures saturation, sharing and crossover behaviour without paying for
//! per-packet events.
//!
//! Per-flow caps model the single-stream limit of a fabric provider (e.g.
//! one TCP stream tops out near 3.1 GiB/s on NEXTGenIO's OmniPath while
//! PSM2 RDMA reaches 12.1 GiB/s). Flows may additionally carry a *cap
//! group*: flows in the same group (same host pair, in practice) see their
//! cap scaled by `count^-alpha`, reproducing the measured sub-linear
//! scaling of parallel TCP streams between one pair of hosts.
//!
//! # Incremental solver
//!
//! Flow populations in the cluster experiments are large (thousands of
//! concurrent shard transfers) but highly *redundant*: most flows share a
//! route, a cap and a cap group with many others, and max-min fairness
//! gives identical flows identical rates. The solver therefore works on
//! **route-equivalence classes** — the distinct `(route, cap, group)`
//! combinations — rather than individual flows, so one progressive-filling
//! pass costs `O(classes × links)` per freezing round instead of
//! `O(flows × links)`. Routes are interned ([`RouteId`]) so class lookup
//! is a hash of three words, flows live in a generational slab rather than
//! an ordered map, and all solver working sets are reusable scratch
//! buffers: the settle path performs no per-event allocation.
//!
//! Same-instant arrivals coalesce: `transfer` only queues one settle event
//! per instant, so a batch of N transfers issued at one tick triggers a
//! single recompute rather than N. The next-completion wakeup uses the
//! kernel's cancellable timers instead of scheduling a fresh closure per
//! settle and letting stale ones no-op via an epoch check.
//!
//! The pre-incremental per-flow solver is kept (under
//! `cfg(any(test, feature = "naive-flow"))`) as an oracle for equivalence
//! tests and as the baseline the `net_flow` benchmark measures against.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use daosim_kernel::sync::{oneshot, OneshotReceiver, OneshotSender};
use daosim_kernel::{Sim, SimDuration, SimTime, SpanId, TimerHandle};

/// One GiB in bytes, as a float; all public bandwidths are GiB/s.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A byte count below which a flow is considered drained (guards float
/// rounding at completion events).
const DRAIN_EPS: f64 = 0.5;

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

/// Generational flow handle: a slab slot plus the slot's generation at
/// issue time, so a reused slot never aliases a completed flow's id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u64);

impl FlowId {
    fn new(slot: u32, generation: u32) -> Self {
        FlowId(((generation as u64) << 32) | slot as u64)
    }

    /// Slab slot the flow occupied.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// Generation of the slot when the id was issued.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Handle to an interned route (a deduplicated link sequence).
///
/// Interning makes starting a transfer over a recurring route cheap — the
/// hot path hashes one word instead of a link vector — and lets the solver
/// key its equivalence classes by route identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteId(u32);

/// Per-flow rate constraints.
#[derive(Clone, Copy, Debug)]
pub struct FlowCap {
    /// Single-flow rate cap in GiB/s (`f64::INFINITY` for none).
    pub base_gib: f64,
    /// Optional cap group (e.g. a host pair). Flows sharing a group get
    /// `base * count^-alpha` each, modelling parallel-stream inefficiency.
    pub group: Option<u64>,
    /// Sub-linearity exponent for grouped flows; 0 disables the effect.
    pub alpha: f64,
}

impl FlowCap {
    pub fn unlimited() -> Self {
        FlowCap {
            base_gib: f64::INFINITY,
            group: None,
            alpha: 0.0,
        }
    }

    pub fn capped(base_gib: f64) -> Self {
        FlowCap {
            base_gib,
            group: None,
            alpha: 0.0,
        }
    }
}

/// Cumulative settle-path counters, for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Settle passes executed. Same-instant arrivals coalesce into one.
    pub settles: u64,
    /// Rate recomputations actually performed (≤ `settles`; clean settles
    /// skip the solver entirely).
    pub recomputes: u64,
}

struct Flow {
    class: u32,
    remaining: f64, // bytes
    done: Option<OneshotSender<()>>,
    /// Open "net" span, closed when the flow drains.
    span: Option<SpanId>,
}

struct Slot {
    generation: u32,
    flow: Option<Flow>,
}

/// A route-equivalence class: every live flow with this `(route, cap,
/// group)` combination shares one max-min rate.
struct Class {
    route: RouteId,
    cap: FlowCap,
    /// Live flows currently in the class.
    active: u32,
    /// Per-flow rate in bytes/s, set by the last recompute.
    rate: f64,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ClassKey {
    route: RouteId,
    cap_bits: (u64, u64), // (base_gib, alpha) as raw bits
    group: Option<u64>,
}

impl ClassKey {
    fn new(route: RouteId, cap: FlowCap) -> Self {
        ClassKey {
            route,
            cap_bits: (cap.base_gib.to_bits(), cap.alpha.to_bits()),
            group: cap.group,
        }
    }
}

/// Reusable solver working sets; cleared, never reallocated, per settle.
#[derive(Default)]
struct Scratch {
    residual: Vec<f64>,
    link_count: Vec<u32>,
    eff_cap: Vec<f64>,
    unfrozen: Vec<u32>,
    still: Vec<u32>,
    finished: Vec<(OneshotSender<()>, Option<SpanId>)>,
}

struct Inner {
    links: Vec<f64>, // capacity in bytes/s
    slots: Vec<Slot>,
    free: Vec<u32>,
    active: usize,
    routes: Vec<Rc<[LinkId]>>,
    route_index: HashMap<Rc<[LinkId]>, RouteId>,
    classes: Vec<Class>,
    class_index: HashMap<ClassKey, u32>,
    group_counts: HashMap<u64, u32>,
    last_update: SimTime,
    /// Cumulative bytes delivered, for debugging/accounting.
    delivered: f64,
    /// Membership changed since the last recompute.
    dirty: bool,
    /// A settle event for the current instant is already queued.
    settle_queued: bool,
    /// Pending next-completion wakeup.
    timer: Option<TimerHandle>,
    stats: SolverStats,
    scratch: Scratch,
    #[cfg(any(test, feature = "naive-flow"))]
    naive: bool,
}

/// The flow network. Cheap to clone; all clones share one state.
///
/// ```
/// use daosim_kernel::Sim;
/// use daosim_net::{FlowCap, FlowNet};
///
/// let sim = Sim::new();
/// let net = FlowNet::new(&sim);
/// let link = net.add_link(2.0); // 2 GiB/s
/// let n = net.clone();
/// let end = sim.block_on(async move {
///     // 2 GiB over a 2 GiB/s link: one second.
///     n.transfer(&[link], 2 << 30, FlowCap::unlimited()).await;
/// });
/// assert!((end.as_secs_f64() - 1.0).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct FlowNet {
    sim: Sim,
    inner: Rc<RefCell<Inner>>,
}

impl FlowNet {
    pub fn new(sim: &Sim) -> Self {
        Self::build(sim, false)
    }

    /// A network driven by the reference per-flow solver, for equivalence
    /// tests and baseline benchmarks.
    #[cfg(any(test, feature = "naive-flow"))]
    pub fn new_naive(sim: &Sim) -> Self {
        Self::build(sim, true)
    }

    fn build(sim: &Sim, naive: bool) -> Self {
        #[cfg(not(any(test, feature = "naive-flow")))]
        let _ = naive;
        FlowNet {
            sim: sim.clone(),
            inner: Rc::new(RefCell::new(Inner {
                links: Vec::new(),
                slots: Vec::new(),
                free: Vec::new(),
                active: 0,
                routes: Vec::new(),
                route_index: HashMap::new(),
                classes: Vec::new(),
                class_index: HashMap::new(),
                group_counts: HashMap::new(),
                last_update: SimTime::ZERO,
                delivered: 0.0,
                dirty: false,
                settle_queued: false,
                timer: None,
                stats: SolverStats::default(),
                scratch: Scratch::default(),
                #[cfg(any(test, feature = "naive-flow"))]
                naive,
            })),
        }
    }

    /// Adds a link with the given capacity (GiB/s) and returns its id.
    /// Links can be added at any time; capacities can later be rescaled
    /// with [`FlowNet::set_link_capacity`] (e.g. for fault injection).
    pub fn add_link(&self, cap_gib: f64) -> LinkId {
        assert!(cap_gib > 0.0, "link capacity must be positive");
        let mut inner = self.inner.borrow_mut();
        let id = LinkId(inner.links.len() as u32);
        inner.links.push(cap_gib * GIB);
        id
    }

    /// Rescales an existing link's capacity to `cap_gib` (GiB/s) at the
    /// current simulated instant. In-flight flows keep the bytes already
    /// drained at the old rate; fair shares are recomputed from here on.
    /// Used by fault campaigns to model NIC/link degradation and recovery.
    pub fn set_link_capacity(&self, link: LinkId, cap_gib: f64) {
        assert!(cap_gib > 0.0, "link capacity must be positive");
        let now = self.sim.now();
        let queue_settle;
        {
            let mut inner = self.inner.borrow_mut();
            let slot = link.0 as usize;
            assert!(slot < inner.links.len(), "unknown link {link:?}");
            inner.advance_to(now);
            inner.links[slot] = cap_gib * GIB;
            inner.dirty = true;
            queue_settle = !inner.settle_queued;
            inner.settle_queued = true;
        }
        if queue_settle {
            let this = self.clone();
            self.sim.schedule_at(now, move || this.settle());
        }
    }

    /// Current capacity of `link` in GiB/s.
    pub fn link_capacity(&self, link: LinkId) -> f64 {
        self.inner.borrow().links[link.0 as usize] / GIB
    }

    pub fn link_count(&self) -> usize {
        self.inner.borrow().links.len()
    }

    pub fn active_flows(&self) -> usize {
        self.inner.borrow().active
    }

    /// Total bytes delivered by completed and in-progress flows.
    pub fn bytes_delivered(&self) -> f64 {
        let mut inner = self.inner.borrow_mut();
        let now = self.sim.now();
        inner.advance_to(now);
        inner.delivered
    }

    /// Settle-path counters (see [`SolverStats`]).
    pub fn solver_stats(&self) -> SolverStats {
        self.inner.borrow().stats
    }

    /// Interns `route`, validating every link, and returns its id. Call
    /// sites that reuse a route should intern once and use
    /// [`FlowNet::transfer_interned`].
    pub fn intern_route(&self, route: &[LinkId]) -> RouteId {
        self.inner.borrow_mut().intern_route(route)
    }

    /// The link sequence behind an interned route.
    pub fn route_links(&self, route: RouteId) -> Rc<[LinkId]> {
        Rc::clone(&self.inner.borrow().routes[route.0 as usize])
    }

    /// Starts a transfer of `bytes` over `route` and returns a future that
    /// resolves when the last byte has drained. A zero-byte transfer (or an
    /// empty route, i.e. a node-local copy) completes immediately.
    pub fn transfer(&self, route: &[LinkId], bytes: u64, cap: FlowCap) -> OneshotReceiver<()> {
        if route.is_empty() {
            let (tx, rx) = oneshot();
            tx.send(());
            return rx;
        }
        let route = self.intern_route(route);
        self.transfer_interned(route, bytes, cap)
    }

    /// [`FlowNet::transfer`] over a pre-interned route: the hot path for
    /// repeated transfers between the same endpoints.
    pub fn transfer_interned(
        &self,
        route: RouteId,
        bytes: u64,
        cap: FlowCap,
    ) -> OneshotReceiver<()> {
        let (tx, rx) = oneshot();
        let now = self.sim.now();
        let queue_settle;
        {
            let mut inner = self.inner.borrow_mut();
            let links = inner
                .routes
                .get(route.0 as usize)
                .unwrap_or_else(|| panic!("unknown route {route:?}"));
            if bytes == 0 || links.is_empty() {
                drop(inner);
                tx.send(());
                return rx;
            }
            inner.advance_to(now);
            let class = inner.class_for(route, cap);
            if let Some(g) = cap.group {
                *inner.group_counts.entry(g).or_insert(0) += 1;
            }
            inner.classes[class as usize].active += 1;
            // Leaf span: the admit side runs in the issuing task (so the
            // span parents under its open op span), but the end fires in
            // a settle event once the last byte drains.
            let span = if self.sim.trace_enabled() {
                self.sim
                    .obs()
                    .span_begin_leaf("net", &format!("xfer {bytes} B"))
            } else {
                None
            };
            inner.insert_flow(Flow {
                class,
                remaining: bytes as f64,
                done: Some(tx),
                span,
            });
            queue_settle = !inner.settle_queued;
            inner.settle_queued = true;
        }
        if queue_settle {
            // Coalesce: every same-instant arrival after the first rides
            // this one event, so a batch triggers a single recompute.
            let this = self.clone();
            self.sim.schedule_at(now, move || this.settle());
        }
        rx
    }

    /// Brings remaining byte counts up to date, completes drained flows,
    /// recomputes fair rates if membership changed and (re)schedules the
    /// next completion wakeup. Idempotent and cheap when nothing changed.
    fn settle(&self) {
        let now = self.sim.now();
        let (mut finished, retime) = {
            let mut inner = self.inner.borrow_mut();
            inner.settle_queued = false;
            inner.stats.settles += 1;
            inner.advance_to(now);
            let mut finished = std::mem::take(&mut inner.scratch.finished);
            inner.drain_completed(&mut finished);
            if inner.dirty {
                inner.recompute();
                inner.stats.recomputes += 1;
                inner.dirty = false;
            }
            let next_at = inner.next_completion(now);
            let keep =
                matches!(&inner.timer, Some(t) if t.is_armed() && Some(t.deadline()) == next_at);
            let retime = if keep {
                None
            } else {
                if let Some(t) = inner.timer.take() {
                    t.cancel();
                }
                next_at
            };
            (finished, retime)
        };
        if let Some(at) = retime {
            let this = self.clone();
            let handle = self.sim.schedule_cancellable_at(at, move || this.settle());
            self.inner.borrow_mut().timer = Some(handle);
        }
        // Fire completions outside the borrow: the woken tasks may start
        // new transfers re-entering this FlowNet. Spans close before the
        // send so the flow's End precedes anything the woken task logs.
        for (tx, span) in finished.drain(..) {
            if let Some(s) = span {
                self.sim.obs().span_end(s);
            }
            tx.send(());
        }
        self.inner.borrow_mut().scratch.finished = finished;
    }

    /// Runs any settle pending for the current instant so observers see
    /// rates that reflect every transfer issued so far this tick.
    fn ensure_settled(&self) {
        let stale = {
            let inner = self.inner.borrow();
            inner.settle_queued || inner.dirty
        };
        if stale {
            self.settle();
        }
    }

    /// Current rate of every active flow in GiB/s (diagnostics/tests).
    /// Routes are shared slices into the intern table — no cloning.
    pub fn snapshot_rates(&self) -> Vec<(Rc<[LinkId]>, f64)> {
        self.ensure_settled();
        let inner = self.inner.borrow();
        inner
            .slots
            .iter()
            .filter_map(|s| s.flow.as_ref())
            .map(|f| {
                let c = &inner.classes[f.class as usize];
                (Rc::clone(&inner.routes[c.route.0 as usize]), c.rate / GIB)
            })
            .collect()
    }
}

impl Inner {
    fn intern_route(&mut self, route: &[LinkId]) -> RouteId {
        if let Some(&id) = self.route_index.get(route) {
            return id;
        }
        for l in route {
            assert!(
                (l.0 as usize) < self.links.len(),
                "route references unknown link {l:?}"
            );
        }
        let shared: Rc<[LinkId]> = Rc::from(route);
        let id = RouteId(self.routes.len() as u32);
        self.routes.push(Rc::clone(&shared));
        self.route_index.insert(shared, id);
        id
    }

    fn class_for(&mut self, route: RouteId, cap: FlowCap) -> u32 {
        let key = ClassKey::new(route, cap);
        if let Some(&c) = self.class_index.get(&key) {
            return c;
        }
        let id = self.classes.len() as u32;
        self.classes.push(Class {
            route,
            cap,
            active: 0,
            rate: 0.0,
        });
        self.class_index.insert(key, id);
        id
    }

    fn insert_flow(&mut self, flow: Flow) -> FlowId {
        self.active += 1;
        self.dirty = true;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.flow.is_none(), "free list pointed at a live slot");
            s.flow = Some(flow);
            FlowId::new(slot, s.generation)
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                flow: Some(flow),
            });
            FlowId::new(slot, 0)
        }
    }

    /// Drains `rate * dt` bytes from each flow up to `now`.
    fn advance_to(&mut self, now: SimTime) {
        let dt = now
            .saturating_duration_since(self.last_update)
            .as_secs_f64();
        self.last_update = now;
        if dt == 0.0 || self.active == 0 {
            return;
        }
        let Inner { slots, classes, .. } = self;
        let mut moved = 0.0;
        for slot in slots.iter_mut() {
            if let Some(f) = &mut slot.flow {
                let d = (classes[f.class as usize].rate * dt).min(f.remaining);
                f.remaining -= d;
                moved += d;
            }
        }
        self.delivered += moved;
    }

    /// Removes every drained flow, collecting its completion sender.
    /// Scans slots in index order so same-instant completions fire
    /// deterministically.
    fn drain_completed(&mut self, finished: &mut Vec<(OneshotSender<()>, Option<SpanId>)>) {
        if self.active == 0 {
            return;
        }
        for idx in 0..self.slots.len() {
            match &self.slots[idx].flow {
                Some(f) if f.remaining <= DRAIN_EPS => {}
                _ => continue,
            }
            let mut f = self.slots[idx].flow.take().expect("checked above");
            self.slots[idx].generation = self.slots[idx].generation.wrapping_add(1);
            self.free.push(idx as u32);
            self.active -= 1;
            self.dirty = true;
            let class = &mut self.classes[f.class as usize];
            class.active -= 1;
            if let Some(g) = class.cap.group {
                let c = self.group_counts.get_mut(&g).expect("group count missing");
                *c -= 1;
                if *c == 0 {
                    self.group_counts.remove(&g);
                }
            }
            if let Some(tx) = f.done.take() {
                finished.push((tx, f.span.take()));
            }
        }
    }

    /// Earliest completion instant across active flows, if any.
    fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<f64> = None;
        for slot in &self.slots {
            if let Some(f) = &slot.flow {
                let rate = self.classes[f.class as usize].rate;
                debug_assert!(rate > 0.0, "flow starved by zero rate");
                let t = f.remaining.max(0.0) / rate;
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best.map(|secs| now + SimDuration::from_secs_f64(secs))
    }

    fn recompute(&mut self) {
        #[cfg(any(test, feature = "naive-flow"))]
        if self.naive {
            for (slot, rate) in self.naive_rates() {
                let class = self.slots[slot as usize]
                    .flow
                    .as_ref()
                    .expect("naive rate for empty slot")
                    .class;
                self.classes[class as usize].rate = rate;
            }
            return;
        }
        self.recompute_classes();
    }

    /// Progressive-filling max-min fairness over route-equivalence
    /// classes.
    ///
    /// Repeatedly finds the tightest constraint — either a link's equal
    /// share among its unfrozen flows or a class's per-flow cap — freezes
    /// the classes bound by it, and subtracts their members' rates from
    /// link residuals. Because all flows of a class are symmetric they
    /// freeze together, so this terminates in at most `#classes`
    /// iterations and never touches individual flows.
    fn recompute_classes(&mut self) {
        let Inner {
            links,
            routes,
            classes,
            group_counts,
            scratch,
            ..
        } = self;
        let Scratch {
            residual,
            link_count,
            eff_cap,
            unfrozen,
            still,
            ..
        } = scratch;
        let nl = links.len();
        residual.clear();
        residual.extend_from_slice(links);
        link_count.clear();
        link_count.resize(nl, 0);
        eff_cap.clear();
        eff_cap.resize(classes.len(), f64::INFINITY);
        unfrozen.clear();

        // Effective per-flow caps (group scaling applied once up front)
        // and per-link member counts.
        for (ci, c) in classes.iter_mut().enumerate() {
            if c.active == 0 {
                c.rate = 0.0;
                continue;
            }
            let mut cap = c.cap.base_gib * GIB;
            if let (Some(g), true) = (c.cap.group, c.cap.alpha > 0.0) {
                let n = *group_counts.get(&g).unwrap_or(&1) as f64;
                cap *= n.powf(-c.cap.alpha);
            }
            eff_cap[ci] = cap;
            for l in routes[c.route.0 as usize].iter() {
                link_count[l.0 as usize] += c.active;
            }
            unfrozen.push(ci as u32);
        }

        while !unfrozen.is_empty() {
            // Tightest link share.
            let mut level = f64::INFINITY;
            for l in 0..nl {
                if link_count[l] > 0 {
                    level = level.min(residual[l] / link_count[l] as f64);
                }
            }
            // Tightest class cap.
            for &ci in unfrozen.iter() {
                level = level.min(eff_cap[ci as usize]);
            }
            assert!(
                level.is_finite() && level > 0.0,
                "progressive filling found no finite positive level"
            );
            let tol = level * (1.0 + 1e-9);
            // Freeze every class bound at this level: either its cap is
            // the level, or its route crosses a link whose fair share is
            // the level.
            still.clear();
            let mut froze_any = false;
            for &ci in unfrozen.iter() {
                let ci = ci as usize;
                let (route, members) = (classes[ci].route, classes[ci].active);
                let route = &routes[route.0 as usize];
                let capped = eff_cap[ci] <= tol;
                let link_bound = route
                    .iter()
                    .any(|l| residual[l.0 as usize] / link_count[l.0 as usize] as f64 <= tol);
                if capped || link_bound {
                    let rate = if capped { eff_cap[ci] } else { level };
                    for l in route.iter() {
                        let li = l.0 as usize;
                        residual[li] = (residual[li] - rate * members as f64).max(0.0);
                        link_count[li] -= members;
                    }
                    classes[ci].rate = rate;
                    froze_any = true;
                } else {
                    still.push(ci as u32);
                }
            }
            assert!(froze_any, "progressive filling made no progress");
            std::mem::swap(unfrozen, still);
        }
    }

    /// The pre-incremental reference solver: per-flow progressive filling,
    /// allocating its working sets per call. Returns `(slot, rate)` pairs.
    /// Kept as the oracle the incremental solver is property-tested
    /// against, and as the baseline for the `net_flow` benchmark.
    #[cfg(any(test, feature = "naive-flow"))]
    fn naive_rates(&self) -> Vec<(u32, f64)> {
        let nl = self.links.len();
        let mut residual = self.links.clone();
        let mut link_count = vec![0u32; nl];
        let mut eff_cap: HashMap<u32, f64> = HashMap::new();
        let mut unfrozen: Vec<u32> = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(f) = &slot.flow else { continue };
            let c = &self.classes[f.class as usize];
            let mut cap = c.cap.base_gib * GIB;
            if let (Some(g), true) = (c.cap.group, c.cap.alpha > 0.0) {
                let n = *self.group_counts.get(&g).unwrap_or(&1) as f64;
                cap *= n.powf(-c.cap.alpha);
            }
            eff_cap.insert(idx as u32, cap);
            for l in self.routes[c.route.0 as usize].iter() {
                link_count[l.0 as usize] += 1;
            }
            unfrozen.push(idx as u32);
        }
        let mut rates: Vec<(u32, f64)> = Vec::with_capacity(unfrozen.len());
        while !unfrozen.is_empty() {
            let mut level = f64::INFINITY;
            for l in 0..nl {
                if link_count[l] > 0 {
                    level = level.min(residual[l] / link_count[l] as f64);
                }
            }
            for idx in &unfrozen {
                level = level.min(eff_cap[idx]);
            }
            assert!(
                level.is_finite() && level > 0.0,
                "naive progressive filling found no finite positive level"
            );
            let tol = level * (1.0 + 1e-9);
            let mut still = Vec::with_capacity(unfrozen.len());
            let mut froze_any = false;
            for idx in unfrozen {
                let f = self.slots[idx as usize].flow.as_ref().expect("live slot");
                let route = &self.routes[self.classes[f.class as usize].route.0 as usize];
                let capped = eff_cap[&idx] <= tol;
                let link_bound = route
                    .iter()
                    .any(|l| residual[l.0 as usize] / link_count[l.0 as usize] as f64 <= tol);
                if capped || link_bound {
                    let rate = if capped { eff_cap[&idx] } else { level };
                    for l in route.iter() {
                        let li = l.0 as usize;
                        residual[li] = (residual[li] - rate).max(0.0);
                        link_count[li] -= 1;
                    }
                    rates.push((idx, rate));
                    froze_any = true;
                } else {
                    still.push(idx);
                }
            }
            assert!(froze_any, "naive progressive filling made no progress");
            unfrozen = still;
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    fn run_transfer(caps: &[f64], routes: Vec<(Vec<usize>, u64, FlowCap)>) -> Vec<u64> {
        // Returns completion time (ns) per flow, started simultaneously.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let links: Vec<LinkId> = caps.iter().map(|&c| net.add_link(c)).collect();
        let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
        for (i, (route, bytes, cap)) in routes.into_iter().enumerate() {
            let route: Vec<LinkId> = route.into_iter().map(|r| links[r]).collect();
            let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
            sim.spawn(async move {
                net.transfer(&route, bytes, cap).await;
                done.borrow_mut().push((i, sim2.now().as_nanos()));
            });
        }
        sim.run().expect_quiescent();
        let mut v = done.borrow().clone();
        v.sort();
        v.into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn mid_flow_capacity_rescale_changes_drain_rate() {
        // 2 GiB over a 2 GiB/s link would finish at t=1s; degrading the
        // link to 1 GiB/s at t=0.5s leaves 1 GiB to drain at 1 GiB/s, so
        // the transfer completes at t=1.5s instead.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let link = net.add_link(2.0);
        let done: Rc<Cell<u64>> = Rc::default();
        {
            let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
            sim.spawn(async move {
                net.transfer(&[link], 2 * GIB as u64, FlowCap::unlimited())
                    .await;
                done.set(sim2.now().as_nanos());
            });
        }
        {
            let net = net.clone();
            sim.schedule_after(SimDuration::from_millis(500), move || {
                net.set_link_capacity(link, 1.0);
                assert!((net.link_capacity(link) - 1.0).abs() < 1e-12);
            });
        }
        sim.run().expect_quiescent();
        assert!(
            (done.get() as f64 / 1e9 - 1.5).abs() < 1e-6,
            "completed at {} ns, expected ~1.5e9",
            done.get()
        );
    }

    #[test]
    fn single_flow_takes_bytes_over_capacity() {
        // 1 GiB over a 1 GiB/s link = 1 second.
        let t = run_transfer(&[1.0], vec![(vec![0], GIB as u64, FlowCap::unlimited())]);
        assert!(
            (t[0] as f64 / 1e9 - 1.0).abs() < 1e-6,
            "1 GiB over 1 GiB/s should take ~1s, got {t:?}"
        );
    }

    #[test]
    fn per_flow_cap_binds_below_link() {
        // 10 GiB/s link, flow capped at 2 GiB/s: 1 GiB takes 0.5s... no, 1/2 s.
        let t = run_transfer(&[10.0], vec![(vec![0], GIB as u64, FlowCap::capped(2.0))]);
        assert!((t[0] as f64 / 1e9 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_link_evenly() {
        // Two equal flows on a 2 GiB/s link: each gets 1 GiB/s.
        let t = run_transfer(
            &[2.0],
            vec![
                (vec![0], GIB as u64, FlowCap::unlimited()),
                (vec![0], GIB as u64, FlowCap::unlimited()),
            ],
        );
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6);
        assert!((t[1] as f64 / 1e9 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_textbook_example() {
        // Link0 cap 10 shared by flows A and B; link1 cap 4 crossed only by
        // B. Max-min: B = 4, A = 6.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l0 = net.add_link(10.0);
        let l1 = net.add_link(4.0);
        let a_rate: Rc<Cell<f64>> = Rc::default();
        let (net2, ar) = (net.clone(), Rc::clone(&a_rate));
        sim.spawn(async move {
            let fa = net2.transfer(&[l0], (10.0 * GIB) as u64, FlowCap::unlimited());
            let fb = net2.transfer(&[l0, l1], (10.0 * GIB) as u64, FlowCap::unlimited());
            // Inspect rates right after both flows are active.
            let rates = net2.snapshot_rates();
            for (route, r) in rates {
                if route.len() == 1 {
                    ar.set(r);
                }
            }
            fa.await;
            fb.await;
        });
        sim.run().expect_quiescent();
        assert!((a_rate.get() - 6.0).abs() < 1e-6, "A got {}", a_rate.get());
    }

    #[test]
    fn arrival_slows_existing_flow() {
        // Flow 1 alone for 0.5 s at 2 GiB/s, then flow 2 arrives and they
        // share 1 GiB/s each. Flow 1 carries 2 GiB total:
        //   0.5s * 2 + t * 1 = 2 GiB -> t = 1s -> completes at 1.5s.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(2.0);
        let t1: Rc<Cell<u64>> = Rc::default();
        let (n1, s1, t1c) = (net.clone(), sim.clone(), Rc::clone(&t1));
        sim.spawn(async move {
            n1.transfer(&[l], (2.0 * GIB) as u64, FlowCap::unlimited())
                .await;
            t1c.set(s1.now().as_nanos());
        });
        let (n2, s2) = (net.clone(), sim.clone());
        sim.spawn(async move {
            s2.sleep(SimDuration::from_millis(500)).await;
            n2.transfer(&[l], (4.0 * GIB) as u64, FlowCap::unlimited())
                .await;
        });
        sim.run().expect_quiescent();
        assert!(
            (t1.get() as f64 / 1e9 - 1.5).abs() < 1e-6,
            "flow1 finished at {}",
            t1.get()
        );
    }

    #[test]
    fn departure_speeds_up_survivor() {
        // Both start together on 2 GiB/s: 1 GiB/s each. Small flow (0.5 GiB)
        // leaves at 0.5s; big flow (2 GiB) then runs at 2 GiB/s:
        //   0.5 GiB done, 1.5 GiB left at 2 GiB/s -> +0.75s -> 1.25s total.
        let t = run_transfer(
            &[2.0],
            vec![
                (vec![0], (2.0 * GIB) as u64, FlowCap::unlimited()),
                (vec![0], (0.5 * GIB) as u64, FlowCap::unlimited()),
            ],
        );
        assert!((t[0] as f64 / 1e9 - 1.25).abs() < 1e-6, "{t:?}");
        assert!((t[1] as f64 / 1e9 - 0.5).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn group_alpha_scales_down_parallel_streams() {
        // Two grouped flows with alpha=1: each capped at base/2, so two
        // flows are no faster in aggregate than one.
        let cap = FlowCap {
            base_gib: 2.0,
            group: Some(7),
            alpha: 1.0,
        };
        let t = run_transfer(
            &[100.0],
            vec![(vec![0], GIB as u64, cap), (vec![0], GIB as u64, cap)],
        );
        // Each runs at 1 GiB/s -> 1 s.
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn group_count_resets_after_drain() {
        // After the first grouped transfer finishes, a new one sees n=1.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(100.0);
        let cap = FlowCap {
            base_gib: 2.0,
            group: Some(1),
            alpha: 1.0,
        };
        let times: Rc<RefCell<Vec<u64>>> = Rc::default();
        let (n, s, tc) = (net.clone(), sim.clone(), Rc::clone(&times));
        sim.spawn(async move {
            n.transfer(&[l], (2.0 * GIB) as u64, cap).await;
            tc.borrow_mut().push(s.now().as_nanos());
            n.transfer(&[l], (2.0 * GIB) as u64, cap).await;
            tc.borrow_mut().push(s.now().as_nanos());
        });
        sim.run().expect_quiescent();
        let t = times.borrow().clone();
        // Each runs alone at the full 2 GiB/s cap: 1 s each.
        assert!((t[0] as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
        assert!(((t[1] - t[0]) as f64 / 1e9 - 1.0).abs() < 1e-6, "{t:?}");
    }

    #[test]
    fn zero_bytes_completes_instantly() {
        let t = run_transfer(&[1.0], vec![(vec![0], 0, FlowCap::unlimited())]);
        assert_eq!(t, vec![0]);
    }

    #[test]
    fn empty_route_is_local_copy() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let end = sim.block_on({
            let net = net.clone();
            async move {
                net.transfer(&[], 1_000_000, FlowCap::unlimited()).await;
            }
        });
        assert_eq!(end.as_nanos(), 0);
    }

    #[test]
    fn bytes_delivered_accounts_everything() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(1.0);
        for _ in 0..3 {
            let net = net.clone();
            sim.spawn(async move {
                net.transfer(&[l], 1_000_000, FlowCap::unlimited()).await;
            });
        }
        sim.run().expect_quiescent();
        assert!((net.bytes_delivered() - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_route_panics() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        drop(net.transfer(&[LinkId(5)], 10, FlowCap::unlimited()));
    }

    #[test]
    fn routes_intern_to_one_id() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let a = net.add_link(1.0);
        let b = net.add_link(1.0);
        let r1 = net.intern_route(&[a, b]);
        let r2 = net.intern_route(&[a, b]);
        let r3 = net.intern_route(&[b, a]);
        assert_eq!(r1, r2);
        assert_ne!(r1, r3);
        assert_eq!(&*net.route_links(r1), &[a, b]);
    }

    #[test]
    fn flow_ids_do_not_alias_across_slot_reuse() {
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(10.0);
        let ids: Rc<RefCell<Vec<FlowId>>> = Rc::default();
        {
            let (net, ids) = (net.clone(), Rc::clone(&ids));
            sim.spawn(async move {
                // Sequential transfers reuse slot 0 with bumped generations.
                for _ in 0..3 {
                    let rx = net.transfer(&[l], 1 << 20, FlowCap::unlimited());
                    let inner = net.inner.borrow_mut();
                    ids.borrow_mut()
                        .push(FlowId::new(0, inner.slots[0].generation));
                    drop(inner);
                    rx.await;
                }
            });
        }
        sim.run().expect_quiescent();
        let ids = ids.borrow();
        assert_eq!(ids.len(), 3);
        assert!(ids[0] != ids[1] && ids[1] != ids[2], "{ids:?}");
        assert_eq!(ids[0].slot(), ids[1].slot());
        assert!(ids[1].generation() > ids[0].generation());
    }

    #[test]
    fn same_instant_batch_coalesces_settles() {
        // 64 flows started at one tick must trigger far fewer settles than
        // one per arrival: one for the batch plus one per completion wave.
        let sim = Sim::new();
        let net = FlowNet::new(&sim);
        let l = net.add_link(64.0);
        for _ in 0..64 {
            let net = net.clone();
            sim.spawn(async move {
                net.transfer(&[l], GIB as u64, FlowCap::unlimited()).await;
            });
        }
        sim.run().expect_quiescent();
        let stats = net.solver_stats();
        assert!(
            stats.settles <= 4,
            "expected coalesced settles, got {stats:?}"
        );
        assert!(stats.recomputes <= stats.settles);
    }

    #[test]
    fn incremental_matches_naive_on_mixed_population() {
        // A fixed mixed scenario: shared links, caps, a group — completion
        // times must agree with the reference solver to float tolerance.
        let specs: Vec<(Vec<usize>, u64, FlowCap)> = vec![
            (vec![0], (2.0 * GIB) as u64, FlowCap::unlimited()),
            (vec![0, 1], GIB as u64, FlowCap::capped(1.5)),
            (vec![1], (3.0 * GIB) as u64, FlowCap::unlimited()),
            (
                vec![0, 2],
                GIB as u64,
                FlowCap {
                    base_gib: 2.0,
                    group: Some(9),
                    alpha: 0.5,
                },
            ),
            (
                vec![0, 2],
                GIB as u64,
                FlowCap {
                    base_gib: 2.0,
                    group: Some(9),
                    alpha: 0.5,
                },
            ),
        ];
        let run = |naive: bool| -> Vec<u64> {
            let sim = Sim::new();
            let net = if naive {
                FlowNet::new_naive(&sim)
            } else {
                FlowNet::new(&sim)
            };
            let links: Vec<LinkId> = [4.0, 3.0, 8.0].iter().map(|&c| net.add_link(c)).collect();
            let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
            for (i, (route, bytes, cap)) in specs.iter().enumerate() {
                let route: Vec<LinkId> = route.iter().map(|&r| links[r]).collect();
                let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
                let (bytes, cap) = (*bytes, *cap);
                sim.spawn(async move {
                    net.transfer(&route, bytes, cap).await;
                    done.borrow_mut().push((i, sim2.now().as_nanos()));
                });
            }
            sim.run().expect_quiescent();
            let mut v = done.borrow().clone();
            v.sort();
            v.into_iter().map(|(_, t)| t).collect()
        };
        let fast = run(false);
        let slow = run(true);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            let (f, s) = (*f as f64 / 1e9, *s as f64 / 1e9);
            assert!(
                (f - s).abs() < 1e-6,
                "incremental {fast:?} vs naive {slow:?}"
            );
        }
    }

    #[test]
    fn same_instant_batch_times_match_forced_per_arrival_settling() {
        // Coalescing must be timing-neutral: a batch of same-instant
        // arrivals settled once has to finish exactly like the same batch
        // settled after every arrival (the pre-coalescing behaviour, forced
        // here via the snapshot path).
        let run = |force_per_arrival: bool| -> (Vec<u64>, SolverStats) {
            let sim = Sim::new();
            let net = FlowNet::new(&sim);
            let l = net.add_link(8.0);
            let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
            for i in 0..32 {
                let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
                sim.spawn(async move {
                    let bytes = ((i as u64 % 7) + 1) << 27;
                    let rx = net.transfer(&[l], bytes, FlowCap::unlimited());
                    if force_per_arrival {
                        drop(net.snapshot_rates());
                    }
                    rx.await;
                    done.borrow_mut().push((i, sim2.now().as_nanos()));
                });
            }
            sim.run().expect_quiescent();
            let mut v = done.borrow().clone();
            v.sort();
            (v.into_iter().map(|(_, t)| t).collect(), net.solver_stats())
        };
        let (coalesced, cs) = run(false);
        let (forced, fs) = run(true);
        assert_eq!(coalesced, forced, "coalescing changed completion times");
        assert!(
            cs.recomputes < fs.recomputes,
            "coalesced path should recompute less: {cs:?} vs {fs:?}"
        );
    }
}

#[cfg(test)]
mod solver_equivalence {
    //! Property tests pitting the incremental class solver against the
    //! retained per-flow oracle on randomized topologies.
    use super::*;
    use proptest::prelude::*;
    use std::rc::Rc;

    #[derive(Debug, Clone)]
    struct Spec {
        route: Vec<u8>,
        megs: u32,
        cap_decigib: u32,
        group: u8,
        alpha_centi: u8,
        start_us: u32,
    }

    fn spec() -> impl Strategy<Value = Spec> {
        (
            proptest::collection::vec(0u8..8, 1..4),
            1u32..64,
            5u32..200,
            0u8..4,
            0u8..100,
            0u32..1500,
        )
            .prop_map(
                |(route, megs, cap_decigib, group, alpha_centi, start_us)| Spec {
                    route,
                    megs,
                    cap_decigib,
                    group,
                    alpha_centi,
                    start_us,
                },
            )
    }

    fn cap_of(s: &Spec) -> FlowCap {
        FlowCap {
            base_gib: s.cap_decigib as f64 / 10.0,
            group: if s.group == 0 {
                None
            } else {
                Some(s.group as u64)
            },
            alpha: if s.group == 0 {
                0.0
            } else {
                s.alpha_centi as f64 / 100.0
            },
        }
    }

    fn route_of(s: &Spec, links: &[LinkId]) -> Vec<LinkId> {
        let mut r: Vec<LinkId> = s
            .route
            .iter()
            .map(|&l| links[l as usize % links.len()])
            .collect();
        r.sort_by_key(|l| l.0);
        r.dedup();
        r
    }

    fn run_mode(nl: u8, specs: &[Spec], naive: bool) -> Vec<u64> {
        let sim = Sim::new();
        let net = if naive {
            FlowNet::new_naive(&sim)
        } else {
            FlowNet::new(&sim)
        };
        let links: Vec<LinkId> = (0..nl)
            .map(|i| net.add_link(2.0 + (i % 7) as f64))
            .collect();
        let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
        for (i, s) in specs.iter().enumerate() {
            let route = route_of(s, &links);
            let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
            let bytes = s.megs as u64 * 1024 * 1024;
            let cap = cap_of(s);
            let start = SimDuration::from_micros(s.start_us as u64);
            sim.spawn(async move {
                sim2.sleep(start).await;
                net.transfer(&route, bytes, cap).await;
                done.borrow_mut().push((i, sim2.now().as_nanos()));
            });
        }
        sim.run().expect_quiescent();
        let mut v = done.borrow().clone();
        v.sort();
        v.into_iter().map(|(_, t)| t).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn static_rates_agree(nl in 1u8..9, specs in proptest::collection::vec(spec(), 1..200)) {
            // Same flow population in both networks: every flow's settled
            // rate must match the oracle to 1e-6.
            let sim = Sim::new();
            let fast = FlowNet::new(&sim);
            let slow = FlowNet::new_naive(&sim);
            let fl: Vec<LinkId> = (0..nl).map(|i| fast.add_link(2.0 + (i % 7) as f64)).collect();
            let sl: Vec<LinkId> = (0..nl).map(|i| slow.add_link(2.0 + (i % 7) as f64)).collect();
            let mut pending = Vec::new();
            for s in &specs {
                let bytes = s.megs as u64 * 1024 * 1024;
                pending.push(fast.transfer(&route_of(s, &fl), bytes, cap_of(s)));
                pending.push(slow.transfer(&route_of(s, &sl), bytes, cap_of(s)));
            }
            let a = fast.snapshot_rates();
            let b = slow.snapshot_rates();
            prop_assert_eq!(a.len(), b.len());
            for ((ra, va), (rb, vb)) in a.iter().zip(&b) {
                prop_assert_eq!(ra.len(), rb.len());
                let scale = va.abs().max(vb.abs()).max(1.0);
                prop_assert!(
                    (va - vb).abs() <= 1e-6 * scale,
                    "rate mismatch: incremental {} vs naive {}", va, vb
                );
            }
            drop(pending);
        }

        #[test]
        fn completion_times_agree(nl in 1u8..9, specs in proptest::collection::vec(spec(), 1..60)) {
            // Full dynamic runs (staggered arrivals, same-instant batches
            // via repeated start times): completion schedules must match
            // the oracle to 1e-6 relative.
            let fast = run_mode(nl, &specs, false);
            let slow = run_mode(nl, &specs, true);
            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                let tol = (1e-6 * (*f as f64)).max(2e3);
                prop_assert!(
                    ((*f as f64) - (*s as f64)).abs() <= tol,
                    "completion mismatch: incremental {} vs naive {}", f, s
                );
            }
        }
    }
}
