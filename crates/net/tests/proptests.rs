//! Property-based tests of the flow network: conservation, fairness and
//! determinism under arbitrary flow populations.

use std::cell::RefCell;
use std::rc::Rc;

use daosim_kernel::{Sim, SimDuration};
use daosim_net::{FlowCap, FlowNet, GIB};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FlowSpec {
    links: Vec<u8>,
    megs: u32,
    cap_decigib: u32,
    start_us: u32,
}

fn flow_spec() -> impl Strategy<Value = FlowSpec> {
    (
        proptest::collection::vec(0u8..8, 1..4),
        1u32..64,
        5u32..200,
        0u32..2000,
    )
        .prop_map(|(links, megs, cap_decigib, start_us)| FlowSpec {
            links,
            megs,
            cap_decigib,
            start_us,
        })
}

/// Builds the world, runs every flow, and returns per-flow completion
/// times (ns) plus mid-flight rate snapshots. Snapshot routes are shared
/// slices into the network's intern table.
type RateSnapshot = Vec<(Rc<[daosim_net::LinkId]>, f64)>;

fn run_world(specs: &[FlowSpec]) -> (Vec<u64>, Vec<RateSnapshot>) {
    let sim = Sim::new();
    let net = FlowNet::new(&sim);
    let caps: Vec<f64> = (0..8).map(|i| 2.0 + i as f64).collect();
    let links: Vec<_> = caps.iter().map(|&c| net.add_link(c)).collect();
    let done: Rc<RefCell<Vec<(usize, u64)>>> = Rc::default();
    let snaps: Rc<RefCell<Vec<RateSnapshot>>> = Rc::default();
    for (i, spec) in specs.iter().enumerate() {
        let mut route: Vec<_> = spec.links.iter().map(|&l| links[l as usize]).collect();
        route.dedup();
        let (net, sim2, done) = (net.clone(), sim.clone(), Rc::clone(&done));
        let bytes = spec.megs as u64 * 1024 * 1024;
        let cap = FlowCap::capped(spec.cap_decigib as f64 / 10.0);
        let start = SimDuration::from_micros(spec.start_us as u64);
        sim.spawn(async move {
            sim2.sleep(start).await;
            net.transfer(&route, bytes, cap).await;
            done.borrow_mut().push((i, sim2.now().as_nanos()));
        });
    }
    // Periodic fairness snapshots while flows are active.
    {
        let (net, sim2, snaps) = (net.clone(), sim.clone(), Rc::clone(&snaps));
        sim.spawn(async move {
            for _ in 0..50 {
                sim2.sleep(SimDuration::from_micros(300)).await;
                if net.active_flows() > 0 {
                    snaps.borrow_mut().push(net.snapshot_rates());
                }
            }
        });
    }
    sim.run().expect_quiescent();
    let mut d = done.borrow().clone();
    d.sort();
    (
        d.into_iter().map(|(_, t)| t).collect(),
        Rc::try_unwrap(snaps).unwrap().into_inner(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_flows_complete_and_rates_conserve(specs in proptest::collection::vec(flow_spec(), 1..12)) {
        let (times, snaps) = run_world(&specs);
        prop_assert_eq!(times.len(), specs.len(), "every flow must drain");

        let caps: Vec<f64> = (0..8).map(|i| 2.0 + i as f64).collect();
        for snap in &snaps {
            // Conservation: per-link allocated rate never exceeds capacity.
            let mut load = [0.0f64; 8];
            for (route, rate) in snap {
                prop_assert!(*rate > 0.0, "active flow must have positive rate");
                for l in route.iter() {
                    load[l.0 as usize] += rate;
                }
            }
            for (l, &used) in load.iter().enumerate() {
                prop_assert!(
                    used <= caps[l] * (1.0 + 1e-6),
                    "link {l} over capacity: {used} > {}",
                    caps[l]
                );
            }
        }
    }

    #[test]
    fn per_flow_caps_respected(specs in proptest::collection::vec(flow_spec(), 1..10)) {
        let (_, snaps) = run_world(&specs);
        for snap in &snaps {
            for (_, rate) in snap {
                // The largest configurable cap is 20 GiB/s.
                prop_assert!(*rate <= 20.0 + 1e-9);
            }
        }
    }

    #[test]
    fn flow_time_never_beats_physics(spec in flow_spec()) {
        let (times, _) = run_world(std::slice::from_ref(&spec));
        let bytes = spec.megs as f64 * 1024.0 * 1024.0;
        let caps: Vec<f64> = (0..8).map(|i| 2.0 + i as f64).collect();
        let mut route: Vec<u8> = spec.links.clone();
        route.dedup();
        let min_link = route
            .iter()
            .map(|&l| caps[l as usize])
            .fold(f64::INFINITY, f64::min);
        let best = min_link.min(spec.cap_decigib as f64 / 10.0);
        let ideal_ns = bytes / (best * GIB) * 1e9 + spec.start_us as f64 * 1000.0;
        prop_assert!(
            times[0] as f64 >= ideal_ns * (1.0 - 1e-9),
            "flow finished at {} ns, faster than the physical bound {} ns",
            times[0],
            ideal_ns
        );
    }

    #[test]
    fn runs_are_deterministic(specs in proptest::collection::vec(flow_spec(), 1..10)) {
        let (a, _) = run_world(&specs);
        let (b, _) = run_world(&specs);
        prop_assert_eq!(a, b);
    }
}
