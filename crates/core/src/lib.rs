//! # daosim-core — weather-field I/O over DAOS (the paper's contribution)
//!
//! Implements §4 and §5 of *"DAOS as HPC Storage: a View From Numerical
//! Weather Prediction"*:
//!
//! * [`key`] — field keys and the most/least-significant split;
//! * [`fieldio`] — the field write/read functions (Algorithms 1 & 2) in
//!   `full`, `no-containers` and `no-index` modes, generic over the
//!   [`daosim_objstore::DaosApi`] backend (embedded store or simulated
//!   cluster);
//! * [`metrics`] — the timestamped-event framework and the paper's two
//!   throughput definitions (synchronous and global timing bandwidth);
//! * [`obs`] — span-trace export (Chrome trace-event JSON for Perfetto,
//!   flat CSV) and structural validation of recorded traces;
//! * [`workload`] — realistic key/payload generation with the high- and
//!   low-contention regimes;
//! * [`patterns`] — access patterns A (unique writes then unique reads)
//!   and B (repeated writes while repeated reads);
//! * [`request`] — MARS-style multi-field requests (cartesian keyword
//!   expansion and bulk retrieval);
//! * [`ioserver`] — the model-rank → I/O-server aggregation pipeline the
//!   paper's operational context describes (§1.2);
//! * [`trace`] — schedule-driven workload traces with paced replay and
//!   tardiness accounting (did storage keep the time-critical window?).

pub mod cycle;
pub mod fieldio;
pub mod ioserver;
pub mod key;
pub mod metrics;
pub mod obs;
pub mod patterns;
pub mod request;
pub mod trace;
pub mod workload;

pub use cycle::{
    cycle_contents, run_nwp_cycle, CycleConfig, CycleConfigBuilder, CycleConfigError, CycleOutcome,
    DeadlineLedger, IndexLayout,
};
pub use fieldio::{FieldIoConfig, FieldIoError, FieldIoMode, FieldResult, FieldStore};
pub use key::{FieldKey, KeyPart, KeySchema};
pub use metrics::{
    bandwidth_timeline, events_to_csv, latency_stats, EventKind, EventRecord, LatencyStats,
    PhaseStats, Recorder,
};
pub use obs::{
    chrome_trace_json, json_is_wellformed, spans_to_csv, validate_spans, MetricsSnapshot,
    SpanEvent, TraceSummary,
};
pub use patterns::{run_pattern_a, run_pattern_b, PatternConfig, PatternResult};
pub use request::{archive_all, retrieve, Request, Retrieval};
pub use trace::{replay, replay_traced, Pacing, ReplayStats, Trace, TraceEntry, TracedReplay};
pub use workload::{payload, Contention, KeyGen};
