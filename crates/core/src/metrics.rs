//! Benchmark metrics: timestamped events and the paper's throughput
//! definitions (§5.5).
//!
//! Benchmarks record timestamps for named events, each tagged with the
//! client node, process and iteration it belongs to. From those, two
//! bandwidths are derived:
//!
//! * **synchronous bandwidth** (Eq. 1) — per-iteration parallel
//!   wall-clock bandwidth averaged over iterations; only meaningful for
//!   synchronised benchmarks (IOR);
//! * **global timing bandwidth** (Eq. 2) — total bytes over total
//!   parallel I/O wall-clock time; the paper's contribution for mixed,
//!   unsynchronised workloads on shared storage.

use std::cell::RefCell;
use std::rc::Rc;

use daosim_kernel::{SimDuration, SimTime};
use daosim_net::GIB;
use serde::Serialize;

/// The event names of §5.5.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum EventKind {
    ExecStart,
    IoStart,
    OpenStart,
    OpenEnd,
    XferStart,
    XferEnd,
    CloseStart,
    CloseEnd,
    IoEnd,
    ExecEnd,
}

/// One timestamped benchmark event.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct EventRecord {
    pub node: u16,
    pub process: u32,
    pub iteration: u32,
    pub kind: EventKind,
    /// Nanoseconds since simulation start.
    pub t_ns: u64,
    /// Payload bytes, set on `IoEnd` (zero elsewhere).
    pub bytes: u64,
}

/// Shared event sink; clones record into the same buffer.
#[derive(Clone, Default)]
pub struct Recorder {
    events: Rc<RefCell<Vec<EventRecord>>>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(
        &self,
        node: u16,
        process: u32,
        iteration: u32,
        kind: EventKind,
        t: SimTime,
        bytes: u64,
    ) {
        self.events.borrow_mut().push(EventRecord {
            node,
            process,
            iteration,
            kind,
            t_ns: t.as_nanos(),
            bytes,
        });
    }

    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    pub fn take(&self) -> Vec<EventRecord> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.events.borrow().clone()
    }
}

/// Renders an event trace as CSV (one line per event) for offline
/// analysis — the raw-timestamp artifact the paper's §5.5 pipeline
/// consumes.
pub fn events_to_csv(events: &[EventRecord]) -> String {
    let mut s = String::from("node,process,iteration,event,t_ns,bytes\n");
    for e in events {
        use std::fmt::Write as _;
        let _ = writeln!(
            s,
            "{},{},{},{:?},{},{}",
            e.node, e.process, e.iteration, e.kind, e.t_ns, e.bytes
        );
    }
    s
}

/// Derived statistics for one benchmark phase.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PhaseStats {
    pub total_bytes: u64,
    pub io_count: usize,
    /// Total parallel I/O wall-clock time (max IoEnd − min IoStart).
    pub wall_secs: f64,
    /// Global timing bandwidth (Eq. 2), GiB/s.
    pub global_bw_gib: f64,
    /// Synchronous bandwidth (Eq. 1), GiB/s — `None` when iterations are
    /// not synchronised across processes.
    pub synchronous_bw_gib: Option<f64>,
}

/// Total parallel I/O wall-clock time of §5.5.
pub fn total_parallel_io_wallclock(events: &[EventRecord]) -> Option<SimDuration> {
    let start = events
        .iter()
        .filter(|e| e.kind == EventKind::IoStart)
        .map(|e| e.t_ns)
        .min()?;
    let end = events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.t_ns)
        .max()?;
    (end >= start).then(|| SimDuration::from_nanos(end - start))
}

/// Single-iteration parallel I/O wall-clock time of §5.5.
pub fn single_iteration_wallclock(events: &[EventRecord], iteration: u32) -> Option<SimDuration> {
    let start = events
        .iter()
        .filter(|e| e.kind == EventKind::IoStart && e.iteration == iteration)
        .map(|e| e.t_ns)
        .min()?;
    let end = events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd && e.iteration == iteration)
        .map(|e| e.t_ns)
        .max()?;
    (end >= start).then(|| SimDuration::from_nanos(end - start))
}

/// Synchronous bandwidth (Eq. 1) with fault accounting: iterations cut
/// short by a fault (no `IoEnd`, or a degenerate zero-length window) are
/// excluded from the average and counted instead of poisoning the whole
/// run.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct SynchronousBandwidth {
    /// Mean per-iteration aggregate bandwidth over *complete* iterations,
    /// GiB/s; `None` when no iteration completed.
    pub gib_s: Option<f64>,
    /// Iterations that contributed to the mean.
    pub complete_iterations: usize,
    /// Iterations skipped: missing `IoStart`/`IoEnd` (e.g. every I/O of
    /// the iteration was interrupted by a fault) or zero wall-clock.
    pub dropped_iterations: usize,
}

/// Synchronous bandwidth (Eq. 1): per-iteration aggregate bandwidth,
/// averaged over complete iterations. GiB/s. See
/// [`synchronous_bandwidth_detailed`] for the dropped-iteration count.
pub fn synchronous_bandwidth(events: &[EventRecord]) -> Option<f64> {
    synchronous_bandwidth_detailed(events).gib_s
}

/// The computation behind [`synchronous_bandwidth`], exposing how many
/// iterations were dropped as incomplete.
pub fn synchronous_bandwidth_detailed(events: &[EventRecord]) -> SynchronousBandwidth {
    let mut iters: Vec<u32> = events.iter().map(|e| e.iteration).collect();
    iters.sort_unstable();
    iters.dedup();
    let mut out = SynchronousBandwidth::default();
    let mut acc = 0.0;
    for it in &iters {
        let wall = match single_iteration_wallclock(events, *it) {
            Some(w) if w > SimDuration::ZERO => w,
            _ => {
                out.dropped_iterations += 1;
                continue;
            }
        };
        let bytes: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::IoEnd && e.iteration == *it)
            .map(|e| e.bytes)
            .sum();
        acc += bytes as f64 / GIB / wall.as_secs_f64();
        out.complete_iterations += 1;
    }
    if out.complete_iterations > 0 {
        out.gib_s = Some(acc / out.complete_iterations as f64);
    }
    out
}

/// Global timing bandwidth (Eq. 2). GiB/s.
pub fn global_timing_bandwidth(events: &[EventRecord]) -> Option<f64> {
    let wall = total_parallel_io_wallclock(events)?;
    if wall == SimDuration::ZERO {
        return None;
    }
    let bytes: u64 = events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.bytes)
        .sum();
    Some(bytes as f64 / GIB / wall.as_secs_f64())
}

/// Per-operation latency distribution for one phase. Percentiles use the
/// nearest-rank definition (p-th percentile = value at 1-based rank
/// `ceil(p·n)`), so small samples report an observed latency rather than
/// rounding up to the max.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencyStats {
    pub count: usize,
    /// Operations whose `IoStart` or `IoEnd` had no partner event —
    /// typically fault-interrupted I/O — excluded from the distribution.
    pub incomplete: usize,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

/// Matches `IoStart`/`IoEnd` pairs per `(node, process, iteration)` and
/// summarises the per-operation latency distribution; unmatched events
/// are counted in [`LatencyStats::incomplete`] rather than silently
/// dropped. `None` when no operation completed.
pub fn latency_stats(events: &[EventRecord]) -> Option<LatencyStats> {
    use std::collections::HashMap;
    let mut starts: HashMap<(u16, u32, u32), u64> = HashMap::new();
    let mut lats_ns: Vec<u64> = Vec::new();
    let mut unmatched_ends = 0usize;
    for e in events {
        let id = (e.node, e.process, e.iteration);
        match e.kind {
            // A start overwriting an unfinished start means the earlier
            // operation never completed.
            EventKind::IoStart if starts.insert(id, e.t_ns).is_some() => {
                unmatched_ends += 1;
            }
            EventKind::IoStart => {}
            EventKind::IoEnd => {
                if let Some(s) = starts.remove(&id) {
                    lats_ns.push(e.t_ns.saturating_sub(s));
                } else {
                    unmatched_ends += 1;
                }
            }
            _ => {}
        }
    }
    let incomplete = unmatched_ends + starts.len();
    if lats_ns.is_empty() {
        return None;
    }
    lats_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        // Nearest-rank: 1-based rank ceil(p·n), clamped into range.
        let rank = (p * lats_ns.len() as f64).ceil() as usize;
        lats_ns[rank.clamp(1, lats_ns.len()) - 1] as f64 / 1_000.0
    };
    let mean = lats_ns.iter().sum::<u64>() as f64 / lats_ns.len() as f64 / 1_000.0;
    Some(LatencyStats {
        count: lats_ns.len(),
        incomplete,
        mean_us: mean,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        max_us: *lats_ns.last().unwrap() as f64 / 1_000.0,
    })
}

/// One bucket of a bandwidth-over-time breakdown.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct TimelineBucket {
    /// Bucket start, nanoseconds since simulation start.
    pub t_ns: u64,
    /// Bytes completing (IoEnd) within the bucket.
    pub bytes: u64,
    /// Bucket throughput, GiB/s.
    pub bw_gib: f64,
}

/// Buckets completed bytes over time — the ramp-up/straggler view a
/// single bandwidth number hides. Bytes are attributed to the bucket
/// containing each operation's `IoEnd`. Buckets are anchored at the
/// earliest event of *any* kind (an `IoEnd` can precede the first
/// `IoStart` when operations carry over from an earlier phase) and span
/// through the last `IoEnd`; empty buckets are included so gaps are
/// visible.
pub fn bandwidth_timeline(events: &[EventRecord], bucket: SimDuration) -> Vec<TimelineBucket> {
    assert!(bucket > SimDuration::ZERO, "bucket must be positive");
    if total_parallel_io_wallclock(events).is_none() {
        return Vec::new();
    }
    // Anchoring at min IoStart would underflow the bucket index of any
    // completion that lands before it; the min over all events is a safe
    // lower bound for every attribution.
    let start = events
        .iter()
        .map(|e| e.t_ns)
        .min()
        .expect("wallclock implies events");
    let end = events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.t_ns)
        .max()
        .expect("wallclock implies an end");
    let step = bucket.as_nanos();
    let n = ((end - start) / step + 1) as usize;
    let mut buckets = vec![0u64; n];
    for e in events.iter().filter(|e| e.kind == EventKind::IoEnd) {
        let idx = ((e.t_ns.saturating_sub(start)) / step) as usize;
        buckets[idx.min(n - 1)] += e.bytes;
    }
    let secs = bucket.as_secs_f64();
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| TimelineBucket {
            t_ns: start + i as u64 * step,
            bytes,
            bw_gib: bytes as f64 / GIB / secs,
        })
        .collect()
}

/// Like [`bandwidth_timeline`], but with buckets anchored at t=0 and
/// spanning `[0, end)`, so timelines built from different event streams
/// of the same run (e.g. writes and reads of a replay) line up row for
/// row. Completions at or past `end` land in the final bucket.
pub fn anchored_bandwidth_timeline(
    events: &[EventRecord],
    bucket: SimDuration,
    end: SimTime,
) -> Vec<TimelineBucket> {
    assert!(bucket > SimDuration::ZERO, "bucket must be positive");
    let step = bucket.as_nanos();
    let n = (end.as_nanos().div_ceil(step).max(1)) as usize;
    let mut buckets = vec![0u64; n];
    for e in events.iter().filter(|e| e.kind == EventKind::IoEnd) {
        let idx = ((e.t_ns / step) as usize).min(n - 1);
        buckets[idx] += e.bytes;
    }
    let secs = bucket.as_secs_f64();
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, bytes)| TimelineBucket {
            t_ns: i as u64 * step,
            bytes,
            bw_gib: bytes as f64 / GIB / secs,
        })
        .collect()
}

/// Computes both bandwidths and packaging for one phase.
pub fn phase_stats(events: &[EventRecord], synchronised: bool) -> PhaseStats {
    let total_bytes = events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .map(|e| e.bytes)
        .sum();
    let io_count = events.iter().filter(|e| e.kind == EventKind::IoEnd).count();
    let wall = total_parallel_io_wallclock(events)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    PhaseStats {
        total_bytes,
        io_count,
        wall_secs: wall,
        global_bw_gib: global_timing_bandwidth(events).unwrap_or(0.0),
        synchronous_bw_gib: if synchronised {
            synchronous_bandwidth(events)
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(process: u32, iteration: u32, kind: EventKind, t_ns: u64, bytes: u64) -> EventRecord {
        EventRecord {
            node: 0,
            process,
            iteration,
            kind,
            t_ns,
            bytes,
        }
    }

    /// Two processes, one iteration: proc 0 does I/O over [0, 10s],
    /// proc 1 over [2s, 8s]; 1 GiB each.
    fn simple_phase() -> Vec<EventRecord> {
        const G: u64 = 1 << 30;
        vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(1, 0, EventKind::IoStart, 2_000_000_000, 0),
            ev(1, 0, EventKind::IoEnd, 8_000_000_000, G),
            ev(0, 0, EventKind::IoEnd, 10_000_000_000, G),
        ]
    }

    #[test]
    fn latency_stats_zero_samples_is_none_not_nan() {
        // An idle reader fleet at cycle start yields no events at all —
        // that must be `None`, never a NaN/underflowed percentile row.
        assert!(latency_stats(&[]).is_none());
        // Only unmatched events (fault-interrupted I/O): still no
        // distribution to take percentiles over.
        let only_start = vec![ev(0, 0, EventKind::IoStart, 5, 0)];
        assert!(latency_stats(&only_start).is_none());
        let only_end = vec![ev(0, 0, EventKind::IoEnd, 5, 1)];
        assert!(latency_stats(&only_end).is_none());
    }

    #[test]
    fn latency_stats_one_sample_has_finite_degenerate_percentiles() {
        // Nearest-rank with n=1: every percentile is the one sample;
        // the rank clamp must not underflow to index -1.
        let evs = vec![
            ev(3, 0, EventKind::IoStart, 1_000, 0),
            ev(3, 0, EventKind::IoEnd, 4_000, 64),
        ];
        let s = latency_stats(&evs).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.incomplete, 0);
        for v in [s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us] {
            assert!(v.is_finite(), "degenerate percentile must be finite: {s:?}");
            assert_eq!(v, 3.0, "all stats equal the single 3 µs sample: {s:?}");
        }
    }

    #[test]
    fn latency_stats_one_complete_among_incomplete() {
        // One matched pair amid unmatched starts: count=1 percentiles,
        // incomplete tallied, everything finite.
        let evs = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(1, 0, EventKind::IoStart, 10, 0),
            ev(1, 0, EventKind::IoEnd, 2_010, 8),
        ];
        let s = latency_stats(&evs).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.incomplete, 1);
        assert_eq!(s.p99_us, 2.0);
        assert!(s.p99_us.is_finite());
    }

    #[test]
    fn total_wallclock_spans_min_start_to_max_end() {
        let d = total_parallel_io_wallclock(&simple_phase()).unwrap();
        assert_eq!(d.as_secs_f64(), 10.0);
    }

    #[test]
    fn global_bandwidth_eq2() {
        // 2 GiB over 10 s = 0.2 GiB/s.
        let bw = global_timing_bandwidth(&simple_phase()).unwrap();
        assert!((bw - 0.2).abs() < 1e-12);
    }

    #[test]
    fn synchronous_bandwidth_eq1_averages_iterations() {
        const G: u64 = 1 << 30;
        // Iter 0: 2 GiB over 2 s -> 1 GiB/s. Iter 1: 2 GiB over 4 s -> 0.5.
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(1, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 2_000_000_000, G),
            ev(1, 0, EventKind::IoEnd, 1_000_000_000, G),
            ev(0, 1, EventKind::IoStart, 2_000_000_000, 0),
            ev(1, 1, EventKind::IoStart, 2_000_000_000, 0),
            ev(0, 1, EventKind::IoEnd, 6_000_000_000, G),
            ev(1, 1, EventKind::IoEnd, 4_000_000_000, G),
        ];
        let bw = synchronous_bandwidth(&events).unwrap();
        assert!((bw - 0.75).abs() < 1e-12, "got {bw}");
    }

    #[test]
    fn single_iteration_wallclock_filters_by_iteration() {
        const G: u64 = 1 << 30;
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000_000, G),
            ev(0, 1, EventKind::IoStart, 5_000_000_000, 0),
            ev(0, 1, EventKind::IoEnd, 9_000_000_000, G),
        ];
        assert_eq!(
            single_iteration_wallclock(&events, 1)
                .unwrap()
                .as_secs_f64(),
            4.0
        );
        assert!(single_iteration_wallclock(&events, 7).is_none());
    }

    #[test]
    fn idle_gaps_lower_global_but_not_synchronous_bandwidth() {
        const G: u64 = 1 << 30;
        // Same per-iteration speed, but a long gap between iterations.
        let gap = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000_000, G),
            ev(0, 1, EventKind::IoStart, 100_000_000_000, 0),
            ev(0, 1, EventKind::IoEnd, 101_000_000_000, G),
        ];
        let sync = synchronous_bandwidth(&gap).unwrap();
        let global = global_timing_bandwidth(&gap).unwrap();
        assert!((sync - 1.0).abs() < 1e-12);
        assert!(global < 0.05, "global {global} should reflect the gap");
    }

    #[test]
    fn empty_events_yield_none() {
        assert!(total_parallel_io_wallclock(&[]).is_none());
        assert!(global_timing_bandwidth(&[]).is_none());
        assert!(synchronous_bandwidth(&[]).is_none());
    }

    #[test]
    fn recorder_accumulates_and_takes() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.record(0, 1, 2, EventKind::IoStart, SimTime::from_nanos(5), 0);
        r2.record(0, 1, 2, EventKind::IoEnd, SimTime::from_nanos(9), 42);
        assert_eq!(r.len(), 2);
        let events = r.take();
        assert_eq!(events.len(), 2);
        assert!(r2.is_empty());
        assert_eq!(events[1].bytes, 42);
    }

    #[test]
    fn latency_stats_match_hand_computed_distribution() {
        const G: u64 = 1 << 30;
        let mut events = Vec::new();
        // 10 ops with latencies 1..10 ms.
        for i in 0..10u32 {
            events.push(ev(i, 0, EventKind::IoStart, 0, 0));
            events.push(ev(i, 0, EventKind::IoEnd, (i as u64 + 1) * 1_000_000, G));
        }
        let s = latency_stats(&events).unwrap();
        assert_eq!(s.count, 10);
        assert!((s.mean_us - 5_500.0).abs() < 1e-9);
        assert!((s.p50_us - 5_000.0).abs() < 1001.0);
        assert!((s.max_us - 10_000.0).abs() < 1e-9);
        assert!(s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn latency_stats_ignore_unmatched_events() {
        let events = vec![ev(0, 0, EventKind::IoEnd, 5, 1)];
        assert!(latency_stats(&events).is_none());
        let events = vec![ev(0, 0, EventKind::IoStart, 5, 0)];
        assert!(latency_stats(&events).is_none());
    }

    #[test]
    fn latency_stats_count_incomplete_operations() {
        const G: u64 = 1 << 30;
        let events = vec![
            // One complete op...
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000, G),
            // ...a start with no end (fault-interrupted write)...
            ev(1, 0, EventKind::IoStart, 0, 0),
            // ...and an end with no start (stray record).
            ev(2, 0, EventKind::IoEnd, 9, G),
        ];
        let s = latency_stats(&events).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.incomplete, 2);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        const G: u64 = 1 << 30;
        // 4 ops: 1, 2, 3, 4 ms. Interpolated-and-rounded p99 would pick
        // the max by rounding up; nearest-rank p50 = rank 2 = 2 ms.
        let mut events = Vec::new();
        for i in 0..4u32 {
            events.push(ev(i, 0, EventKind::IoStart, 0, 0));
            events.push(ev(i, 0, EventKind::IoEnd, (i as u64 + 1) * 1_000_000, G));
        }
        let s = latency_stats(&events).unwrap();
        assert_eq!(s.incomplete, 0);
        assert!((s.p50_us - 2_000.0).abs() < 1e-9, "p50 {}", s.p50_us);
        assert!((s.p95_us - 4_000.0).abs() < 1e-9);
        assert!((s.p99_us - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn synchronous_bandwidth_skips_fault_interrupted_iterations() {
        const G: u64 = 1 << 30;
        // Iter 0 completes at 1 GiB/s; iter 1 lost its IoEnd to a fault.
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000_000, G),
            ev(0, 1, EventKind::IoStart, 2_000_000_000, 0),
        ];
        let d = synchronous_bandwidth_detailed(&events);
        assert_eq!(d.complete_iterations, 1);
        assert_eq!(d.dropped_iterations, 1);
        let bw = d.gib_s.expect("the surviving iteration still reports");
        assert!((bw - 1.0).abs() < 1e-12, "got {bw}");
        assert_eq!(synchronous_bandwidth(&events), d.gib_s);
        // With every iteration interrupted there is nothing to average.
        let all_lost = vec![ev(0, 0, EventKind::IoStart, 0, 0)];
        let d = synchronous_bandwidth_detailed(&all_lost);
        assert_eq!(d.gib_s, None);
        assert_eq!(d.dropped_iterations, 1);
    }

    #[test]
    fn timeline_buckets_cover_the_phase() {
        const G: u64 = 1 << 30;
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 500_000_000, G),
            ev(1, 0, EventKind::IoStart, 0, 0),
            ev(1, 0, EventKind::IoEnd, 2_500_000_000, G),
        ];
        let tl = bandwidth_timeline(&events, SimDuration::from_secs(1));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl[0].bytes, G);
        assert_eq!(tl[1].bytes, 0, "idle middle bucket must be visible");
        assert_eq!(tl[2].bytes, G);
        assert!((tl[0].bw_gib - 1.0).abs() < 1e-12);
        let total: u64 = tl.iter().map(|b| b.bytes).sum();
        assert_eq!(total, 2 * G);
    }

    #[test]
    fn timeline_of_empty_events_is_empty() {
        assert!(bandwidth_timeline(&[], SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn timeline_survives_completion_before_first_start() {
        const G: u64 = 1 << 30;
        // Regression: an IoEnd carried over from an earlier phase lands
        // *before* the first IoStart. The old code anchored buckets at
        // min IoStart and computed `e.t_ns - start`, underflowing u64 and
        // panicking (or indexing far out of range).
        let events = vec![
            ev(0, 0, EventKind::IoEnd, 5, G),
            ev(1, 0, EventKind::IoStart, 1_000_000_000, 0),
            ev(1, 0, EventKind::IoEnd, 2_500_000_000, G),
        ];
        let tl = bandwidth_timeline(&events, SimDuration::from_secs(1));
        // Anchored at t=5 ns, spanning through the last IoEnd.
        assert_eq!(tl[0].t_ns, 5);
        assert_eq!(tl.len(), 3);
        let total: u64 = tl.iter().map(|b| b.bytes).sum();
        assert_eq!(total, 2 * G, "no completion may be dropped");
        assert_eq!(tl[0].bytes, G, "early completion lands in bucket 0");
        assert_eq!(tl[2].bytes, G);
    }

    #[test]
    fn anchored_timeline_aligns_distinct_event_streams() {
        const G: u64 = 1 << 30;
        // Writes complete in bucket 0, reads in bucket 2; the two
        // timelines must share bucket boundaries anchored at t=0.
        let writes = vec![
            ev(0, 0, EventKind::IoStart, 100_000_000, 0),
            ev(0, 0, EventKind::IoEnd, 500_000_000, G),
        ];
        let reads = vec![
            ev(0, 1, EventKind::IoStart, 2_000_000_000, 0),
            ev(0, 1, EventKind::IoEnd, 2_500_000_000, G),
        ];
        let end = SimTime::from_nanos(3_000_000_000);
        let w = anchored_bandwidth_timeline(&writes, SimDuration::from_secs(1), end);
        let r = anchored_bandwidth_timeline(&reads, SimDuration::from_secs(1), end);
        assert_eq!(w.len(), 3);
        assert_eq!(r.len(), 3);
        assert_eq!((w[0].t_ns, r[0].t_ns), (0, 0));
        assert_eq!(w.iter().map(|b| b.bytes).collect::<Vec<_>>(), [G, 0, 0]);
        assert_eq!(r.iter().map(|b| b.bytes).collect::<Vec<_>>(), [0, 0, G]);
        // Completions past `end` land in the last bucket, not out of range.
        let late = vec![ev(0, 2, EventKind::IoEnd, 9_000_000_000, G)];
        let l = anchored_bandwidth_timeline(&late, SimDuration::from_secs(1), end);
        assert_eq!(l[2].bytes, G);
    }

    #[test]
    fn timeline_event_exactly_on_window_end_lands_in_last_bucket() {
        const G: u64 = 1 << 30;
        // Boundary audit: the phase spans an exact multiple of the bucket
        // width and the final completion sits exactly on the window end,
        // so its raw index is the last valid bucket (and must stay there
        // — an unclamped off-by-one here indexes out of range).
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000_000, G),
            ev(1, 0, EventKind::IoStart, 0, 0),
            ev(1, 0, EventKind::IoEnd, 3_000_000_000, G),
        ];
        let tl = bandwidth_timeline(&events, SimDuration::from_secs(1));
        assert_eq!(tl.len(), 4, "window end starts its own bucket");
        assert_eq!(tl[3].t_ns, 3_000_000_000);
        assert_eq!(tl[3].bytes, G, "boundary completion kept, not dropped");
        let total: u64 = tl.iter().map(|b| b.bytes).sum();
        assert_eq!(total, 2 * G);
    }

    #[test]
    fn anchored_timeline_event_exactly_at_end_is_clamped_to_last_bucket() {
        const G: u64 = 1 << 30;
        // `end` divides evenly into buckets, and a completion lands
        // exactly at `end`: its raw index equals the bucket count, one
        // past the last slot. The clamp attributes it to the final
        // bucket instead of panicking.
        let end = SimTime::from_nanos(3_000_000_000);
        let events = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 3_000_000_000, G),
        ];
        let tl = anchored_bandwidth_timeline(&events, SimDuration::from_secs(1), end);
        assert_eq!(tl.len(), 3, "an exactly-divisible end adds no bucket");
        assert_eq!(tl[2].bytes, G, "boundary completion clamps into range");
        // Interior boundaries follow the same half-open convention: an
        // event exactly on a bucket edge opens the next bucket.
        let edge = vec![
            ev(0, 0, EventKind::IoStart, 0, 0),
            ev(0, 0, EventKind::IoEnd, 1_000_000_000, G),
        ];
        let tl = anchored_bandwidth_timeline(&edge, SimDuration::from_secs(1), end);
        assert_eq!(
            tl.iter().map(|b| b.bytes).collect::<Vec<_>>(),
            [0, G, 0],
            "edge event belongs to the bucket it starts"
        );
    }

    #[test]
    fn events_to_csv_shape() {
        let events = vec![
            ev(3, 0, EventKind::IoStart, 100, 0),
            ev(3, 0, EventKind::IoEnd, 900, 42),
        ];
        let csv = events_to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "node,process,iteration,event,t_ns,bytes");
        assert_eq!(lines[1], "0,3,0,IoStart,100,0");
        assert_eq!(lines[2], "0,3,0,IoEnd,900,42");
    }

    #[test]
    fn phase_stats_packages_both_bandwidths() {
        let s = phase_stats(&simple_phase(), false);
        assert_eq!(s.io_count, 2);
        assert_eq!(s.total_bytes, 2 << 30);
        assert!((s.global_bw_gib - 0.2).abs() < 1e-12);
        assert!(s.synchronous_bw_gib.is_none());
        let s2 = phase_stats(&simple_phase(), true);
        assert!(s2.synchronous_bw_gib.is_some());
    }
}
