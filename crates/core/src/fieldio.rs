//! The field I/O functions — the paper's primary contribution (§4).
//!
//! Weather fields are written and read through a three-layer scheme over
//! DAOS concepts (paper Fig. 2):
//!
//! * a **main Key-Value** (its own container) maps the most-significant
//!   key part to the forecast's *index container*;
//! * a **forecast Key-Value** in the index container maps the
//!   least-significant key part to the forecast *store container* and an
//!   Array object id (plus length, as FDB5 index entries do);
//! * the field bytes live in that **Array**.
//!
//! Container UUIDs are md5 sums of the most-significant key part, so
//! concurrent processes racing to create a forecast's containers converge
//! on the same identity (Algorithm 1's race-avoidance rule). A re-write
//! of an existing key creates a *new* Array and re-points the index: no
//! read-modify-write, and de-referenced arrays are never deleted.
//!
//! Three modes (paper §5.2):
//! * [`FieldIoMode::Full`] — the scheme above;
//! * [`FieldIoMode::NoContainers`] — same indexes, but every object lives
//!   in the main container;
//! * [`FieldIoMode::NoIndex`] — no Key-Values at all: the Array oid is
//!   md5 of the full field key, in the main container.
//!
//! On top of the blocking functions sits the pipelined layer (DESIGN.md
//! §6): [`FieldStore::pipelined_writer`] keeps up to W field writes in
//! flight on an [`EventQueue`], overlapping each field's index KV update
//! with its Array data write and overlapping whole fields with each
//! other, the way FDB's asynchronous flush does.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;

use bytes::{BufMut, Bytes, BytesMut};

use daosim_kernel::sync::join_all;
use daosim_kernel::AdmissionPolicy;
use daosim_objstore::prelude::{
    DaosApi, DaosError, Event, EventQueue, ObjectClass, Oid, OidAllocator, OpOutput, Uuid,
};

use crate::key::{FieldKey, KeyPart, KeySchema};

/// Which parts of the scheme are active.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FieldIoMode {
    #[default]
    Full,
    NoContainers,
    NoIndex,
}

impl FieldIoMode {
    pub fn name(self) -> &'static str {
        match self {
            FieldIoMode::Full => "full",
            FieldIoMode::NoContainers => "no-containers",
            FieldIoMode::NoIndex => "no-index",
        }
    }

    pub fn all() -> [FieldIoMode; 3] {
        [
            FieldIoMode::Full,
            FieldIoMode::NoContainers,
            FieldIoMode::NoIndex,
        ]
    }
}

impl fmt::Display for FieldIoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the field I/O functions. Built with
/// [`FieldIoConfig::builder`].
#[derive(Clone, Debug)]
pub struct FieldIoConfig {
    pub mode: FieldIoMode,
    /// Object class for every Key-Value (paper default: `SX`).
    pub kv_class: ObjectClass,
    /// Object class for field Arrays (paper default: `S1`).
    pub array_class: ObjectClass,
    pub schema: KeySchema,
    /// How many field writes the pipelined paths keep in flight (W). 1
    /// means strictly sequential — the paper's blocking Algorithm 1.
    pub inflight_window: u32,
    /// Service-queue admission policy to force on the deployment in the
    /// replay/run paths; `None` inherits the cluster spec's policy.
    pub admission: Option<AdmissionPolicy>,
}

impl Default for FieldIoConfig {
    fn default() -> Self {
        FieldIoConfig {
            mode: FieldIoMode::Full,
            kv_class: ObjectClass::SX,
            array_class: ObjectClass::S1,
            schema: KeySchema::ecmwf(),
            inflight_window: 1,
            admission: None,
        }
    }
}

impl FieldIoConfig {
    /// Starts a builder at the paper defaults (`Full` mode, `SX` KVs,
    /// `S1` arrays, ECMWF schema, window 1).
    pub fn builder() -> FieldIoConfigBuilder {
        FieldIoConfigBuilder {
            cfg: FieldIoConfig::default(),
        }
    }
}

/// Builder for [`FieldIoConfig`].
#[derive(Clone, Debug)]
pub struct FieldIoConfigBuilder {
    cfg: FieldIoConfig,
}

impl FieldIoConfigBuilder {
    pub fn mode(mut self, mode: FieldIoMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    pub fn kv_class(mut self, class: ObjectClass) -> Self {
        self.cfg.kv_class = class;
        self
    }

    pub fn array_class(mut self, class: ObjectClass) -> Self {
        self.cfg.array_class = class;
        self
    }

    pub fn schema(mut self, schema: KeySchema) -> Self {
        self.cfg.schema = schema;
        self
    }

    /// Sets the pipelined in-flight window W (clamped to at least 1).
    pub fn window(mut self, window: u32) -> Self {
        self.cfg.inflight_window = window.max(1);
        self
    }

    /// Forces a service-queue admission policy on the deployment the
    /// replay/run paths build (overrides the cluster spec's policy).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.cfg.admission = Some(policy);
        self
    }

    pub fn build(self) -> FieldIoConfig {
        self.cfg
    }
}

/// Errors from the field I/O layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FieldIoError {
    /// Algorithm 2's "fail" branches: the key is not indexed.
    FieldNotFound(String),
    /// A corrupt or truncated index entry.
    BadIndexEntry(String),
    /// A DAOS operation failed, annotated with the operation name and the
    /// field/forecast key it was serving, so callers can tell transient
    /// faults (retryable) from permanent ones and attribute them.
    Daos {
        /// The client operation that failed (e.g. `"array_write"`).
        op: &'static str,
        /// Canonical field or forecast key the operation was serving.
        key: String,
        source: DaosError,
    },
}

impl FieldIoError {
    /// Wraps a [`DaosError`] with operation and key context.
    pub fn daos(op: &'static str, key: impl Into<String>, source: DaosError) -> Self {
        FieldIoError::Daos {
            op,
            key: key.into(),
            source,
        }
    }

    /// True when the underlying DAOS error is transient (a retry may
    /// succeed). `FieldNotFound`/`BadIndexEntry` are never transient.
    pub fn is_transient(&self) -> bool {
        matches!(self, FieldIoError::Daos { source, .. } if source.is_transient())
    }

    /// The wrapped DAOS error, when there is one.
    pub fn daos_source(&self) -> Option<&DaosError> {
        match self {
            FieldIoError::Daos { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl fmt::Display for FieldIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldIoError::FieldNotFound(k) => write!(f, "field not found: {k}"),
            FieldIoError::BadIndexEntry(k) => write!(f, "bad index entry for {k}"),
            FieldIoError::Daos { op, key, source } => {
                write!(f, "daos {op} failed for {key}: {source}")
            }
        }
    }
}

impl std::error::Error for FieldIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FieldIoError::Daos { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub type FieldResult<T> = std::result::Result<T, FieldIoError>;

/// Annotates a DAOS result with field-I/O context (op name + key).
fn dctx<T>(r: Result<T, DaosError>, op: &'static str, key: &str) -> FieldResult<T> {
    r.map_err(|e| FieldIoError::daos(op, key, e))
}

/// An index entry: store container, array oid, field length.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndexEntry {
    pub store_cont: Uuid,
    pub oid: Oid,
    pub len: u64,
}

impl IndexEntry {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16 + 16 + 8);
        b.put_slice(self.store_cont.as_bytes());
        let (hi32, lo) = self.oid.user_bits();
        // Re-encode class+user bits losslessly.
        b.put_u8(match self.oid.class() {
            ObjectClass::S1 => 1,
            ObjectClass::S2 => 2,
            ObjectClass::SX => 3,
            ObjectClass::RP2 => 4,
            ObjectClass::EC2P1 => 5,
        });
        b.put_u32(hi32);
        b.put_u64(lo);
        b.put_u64(self.len);
        b.freeze()
    }

    pub fn decode(data: &[u8]) -> Option<IndexEntry> {
        if data.len() != 16 + 1 + 4 + 8 + 8 {
            return None;
        }
        let mut u = [0u8; 16];
        u.copy_from_slice(&data[..16]);
        let class = match data[16] {
            1 => ObjectClass::S1,
            2 => ObjectClass::S2,
            3 => ObjectClass::SX,
            4 => ObjectClass::RP2,
            5 => ObjectClass::EC2P1,
            _ => return None,
        };
        let hi32 = u32::from_be_bytes(data[17..21].try_into().ok()?);
        let lo = u64::from_be_bytes(data[21..29].try_into().ok()?);
        let len = u64::from_be_bytes(data[29..37].try_into().ok()?);
        Some(IndexEntry {
            store_cont: Uuid(u),
            oid: Oid::generate(hi32, lo, class),
            len,
        })
    }
}

/// A process's handle onto the weather-field store: the field write and
/// read functions with per-process connection caching (paper §5.2).
///
/// ```
/// use bytes::Bytes;
/// use daosim_core::fieldio::{FieldIoConfig, FieldStore};
/// use daosim_core::key::FieldKey;
/// use daosim_kernel::Sim;
/// use daosim_objstore::{DaosStore, EmbeddedClient};
///
/// let (_store, pool) = DaosStore::with_single_pool(24);
/// Sim::new().block_on(async move {
///     let fs = FieldStore::connect(EmbeddedClient::new(pool), FieldIoConfig::default(), 1)
///         .await
///         .unwrap();
///     let key = FieldKey::from_pairs([("class", "od"), ("param", "t"), ("step", "24")]);
///     fs.write_field(&key, Bytes::from_static(b"grib")).await.unwrap();
///     assert_eq!(fs.read_field(&key).await.unwrap().as_ref(), b"grib");
/// });
/// ```
pub struct FieldStore<D: DaosApi> {
    client: D,
    cfg: FieldIoConfig,
    main: D::Cont,
    main_kv: Oid,
    alloc: RefCell<OidAllocator>,
    /// msk canonical -> (index container, store container) handles.
    cont_cache: RefCell<HashMap<String, ContPair<D>>>,
}

/// Cached (index container, store container) handles for one forecast.
type ContPair<D> = (<D as DaosApi>::Cont, <D as DaosApi>::Cont);

/// The UUID of the main container (a deployment-wide constant).
pub fn main_container_uuid() -> Uuid {
    Uuid::from_name(b"daosim:main-container")
}

/// Lower bound for range-listing the field entries of a forecast KV.
///
/// Bookkeeping entries use the reserved `__` key prefix (today only
/// `__store_container__`); field entries are canonical
/// `keyword=value,...` strings, which always start with a lowercase
/// schema keyword and therefore sort after the reserved prefix. Listing
/// from the end of the `__` range — `[0x5f, 0x60]`, the prefix's
/// successor — yields exactly the field entries in one range-scan RPC,
/// with no client-side filtering.
const FIELD_KEYS_FROM: &[u8] = b"_\x60";

impl<D: DaosApi> FieldStore<D> {
    /// Connects a process to the store: opens (or creates) the main
    /// container. `client_id` must be unique per process — it namespaces
    /// the oids this process allocates.
    pub async fn connect(client: D, cfg: FieldIoConfig, client_id: u32) -> FieldResult<Self> {
        let main = dctx(
            client.cont_open_or_create(main_container_uuid()).await,
            "cont_open_or_create",
            "main",
        )?;
        let main_kv = Oid::from_digest(&Uuid::from_name(b"daosim:main-kv"), cfg.kv_class);
        Ok(FieldStore {
            client,
            cfg,
            main,
            main_kv,
            alloc: RefCell::new(OidAllocator::new(client_id)),
            cont_cache: RefCell::new(HashMap::new()),
        })
    }

    pub fn config(&self) -> &FieldIoConfig {
        &self.cfg
    }

    pub fn client(&self) -> &D {
        &self.client
    }

    fn forecast_kv_oid(&self, msk: &KeyPart) -> Oid {
        let digest = Uuid::from_name(format!("fkv:{}", msk.canonical()).as_bytes());
        Oid::from_digest(&digest, self.cfg.kv_class)
    }

    fn noindex_oid(&self, key: &FieldKey) -> Oid {
        let digest = Uuid::from_name(format!("field:{}", key.canonical()).as_bytes());
        Oid::from_digest(&digest, self.cfg.array_class)
    }

    /// Opens (or creates, registering in the main KV) the forecast's
    /// index and store containers, cached per process.
    async fn forecast_containers(
        &self,
        msk: &KeyPart,
        create_if_absent: bool,
    ) -> FieldResult<(D::Cont, D::Cont)> {
        let mkey = msk.canonical();
        if let Some(pair) = self.cont_cache.borrow().get(&mkey) {
            return Ok(pair.clone());
        }
        if self.cfg.mode == FieldIoMode::NoContainers {
            // Indexing layers stay; container layers collapse to main.
            let pair = (self.main.clone(), self.main.clone());
            // Still register the forecast in the main KV, as the real
            // functions do (the index layering is mode-independent).
            let registered = dctx(
                self.client
                    .kv_get(&self.main, self.main_kv, mkey.as_bytes())
                    .await,
                "kv_get",
                &mkey,
            )?
            .is_some();
            if !registered {
                if !create_if_absent {
                    return Err(FieldIoError::FieldNotFound(mkey));
                }
                dctx(
                    self.client
                        .kv_put(
                            &self.main,
                            self.main_kv,
                            mkey.as_bytes(),
                            Bytes::copy_from_slice(main_container_uuid().as_bytes()),
                        )
                        .await,
                    "kv_put",
                    &mkey,
                )?;
            }
            self.cont_cache.borrow_mut().insert(mkey, pair.clone());
            return Ok(pair);
        }

        // Full mode: query the main KV for the forecast's index container.
        let index_uuid = Uuid::from_name(format!("cont-index:{mkey}").as_bytes());
        let store_uuid = Uuid::from_name(format!("cont-store:{mkey}").as_bytes());
        let hit = dctx(
            self.client
                .kv_get(&self.main, self.main_kv, mkey.as_bytes())
                .await,
            "kv_get",
            &mkey,
        )?;
        let pair = if hit.is_some() {
            let index = dctx(self.client.cont_open(index_uuid).await, "cont_open", &mkey)?;
            let store = dctx(self.client.cont_open(store_uuid).await, "cont_open", &mkey)?;
            (index, store)
        } else {
            if !create_if_absent {
                return Err(FieldIoError::FieldNotFound(mkey));
            }
            // Create both containers (md5-named: racing creators agree),
            // record the store container id in a special entry of the
            // newly created forecast KV, then register in the main KV.
            let index = dctx(
                self.client.cont_open_or_create(index_uuid).await,
                "cont_open_or_create",
                &mkey,
            )?;
            let store = dctx(
                self.client.cont_open_or_create(store_uuid).await,
                "cont_open_or_create",
                &mkey,
            )?;
            let fkv = self.forecast_kv_oid(msk);
            dctx(
                self.client
                    .kv_put(
                        &index,
                        fkv,
                        b"__store_container__",
                        Bytes::copy_from_slice(store_uuid.as_bytes()),
                    )
                    .await,
                "kv_put",
                &mkey,
            )?;
            dctx(
                self.client
                    .kv_put(
                        &self.main,
                        self.main_kv,
                        mkey.as_bytes(),
                        Bytes::copy_from_slice(index_uuid.as_bytes()),
                    )
                    .await,
                "kv_put",
                &mkey,
            )?;
            (index, store)
        };
        self.cont_cache.borrow_mut().insert(mkey, pair.clone());
        Ok(pair)
    }

    fn index_entry_for(&self, msk: &KeyPart, oid: Oid, len: u64) -> IndexEntry {
        IndexEntry {
            store_cont: if self.cfg.mode == FieldIoMode::NoContainers {
                main_container_uuid()
            } else {
                Uuid::from_name(format!("cont-store:{}", msk.canonical()).as_bytes())
            },
            oid,
            len,
        }
    }

    /// Algorithm 1: field write.
    pub async fn write_field(&self, key: &FieldKey, data: Bytes) -> FieldResult<()> {
        let kc = key.canonical();
        if self.cfg.mode == FieldIoMode::NoIndex {
            let oid = self.noindex_oid(key);
            let h = dctx(
                self.client.array_open_or_create(&self.main, oid).await,
                "array_open_or_create",
                &kc,
            )?;
            dctx(
                self.client.array_write(&self.main, &h, 0, data).await,
                "array_write",
                &kc,
            )?;
            dctx(
                self.client.array_close(&self.main, h).await,
                "array_close",
                &kc,
            )?;
            return Ok(());
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, true).await?;
        // Write the field into a brand-new Array in the store container.
        let oid = self.alloc.borrow_mut().next(self.cfg.array_class);
        let len = data.len() as u64;
        let h = dctx(
            self.client.array_create(&store, oid).await,
            "array_create",
            &kc,
        )?;
        dctx(
            self.client.array_write(&store, &h, 0, data).await,
            "array_write",
            &kc,
        )?;
        dctx(self.client.array_close(&store, h).await, "array_close", &kc)?;
        // Index it in the forecast KV (re-writes re-point the entry; the
        // previous array is de-referenced but never deleted).
        let entry = self.index_entry_for(&msk, oid, len);
        let fkv = self.forecast_kv_oid(&msk);
        dctx(
            self.client
                .kv_put(&index, fkv, lsk.canonical().as_bytes(), entry.encode())
                .await,
            "kv_put",
            &kc,
        )?;
        Ok(())
    }

    /// Algorithm 2: field read.
    pub async fn read_field(&self, key: &FieldKey) -> FieldResult<Bytes> {
        let kc = key.canonical();
        if self.cfg.mode == FieldIoMode::NoIndex {
            let oid = self.noindex_oid(key);
            let h = self
                .client
                .array_open(&self.main, oid)
                .await
                .map_err(|e| match e {
                    DaosError::ObjNotFound(_) => FieldIoError::FieldNotFound(kc.clone()),
                    other => FieldIoError::daos("array_open", kc.clone(), other),
                })?;
            let len = dctx(
                self.client.array_size(&self.main, &h).await,
                "array_size",
                &kc,
            )?;
            let data = dctx(
                self.client.array_read(&self.main, &h, 0, len).await,
                "array_read",
                &kc,
            )?;
            dctx(
                self.client.array_close(&self.main, h).await,
                "array_close",
                &kc,
            )?;
            return Ok(data);
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let raw = dctx(
            self.client
                .kv_get(&index, fkv, lsk.canonical().as_bytes())
                .await,
            "kv_get",
            &kc,
        )?
        .ok_or_else(|| FieldIoError::FieldNotFound(kc.clone()))?;
        let entry =
            IndexEntry::decode(&raw).ok_or_else(|| FieldIoError::BadIndexEntry(kc.clone()))?;
        let h = dctx(
            self.client.array_open(&store, entry.oid).await,
            "array_open",
            &kc,
        )?;
        let data = dctx(
            self.client.array_read(&store, &h, 0, entry.len).await,
            "array_read",
            &kc,
        )?;
        dctx(self.client.array_close(&store, h).await, "array_close", &kc)?;
        Ok(data)
    }

    /// Purges de-referenced arrays of a forecast: every Array in the
    /// forecast's store container that the index no longer points to is
    /// punched. The write path deliberately never deletes (paper §4);
    /// this is the corresponding offline reclamation pass (FDB5's
    /// `purge`). Returns the number of arrays reclaimed.
    pub async fn purge_dereferenced(&self, forecast: &FieldKey) -> FieldResult<usize> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            // md5-stable oids are always "referenced" by construction.
            return Ok(0);
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let mkey = msk.canonical();
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        // Collect the oids the index still references.
        let mut live: std::collections::HashSet<Oid> = std::collections::HashSet::new();
        for k in dctx(
            self.client
                .kv_list_range(&index, fkv, Bytes::from_static(FIELD_KEYS_FROM), None)
                .await,
            "kv_list_range",
            &mkey,
        )? {
            if let Some(raw) = dctx(self.client.kv_get(&index, fkv, &k).await, "kv_get", &mkey)? {
                if let Some(entry) = IndexEntry::decode(&raw) {
                    live.insert(entry.oid);
                }
            }
        }
        // Punch every array in the store container that is not live. The
        // listing comes from the backing container handle; in
        // no-containers mode the store container is the main container,
        // which also holds KV objects and other forecasts' arrays — only
        // punch arrays allocated by field writes that this forecast's
        // index no longer references. We recognise them by probing the
        // object as an Array and skipping anything still referenced.
        let mut purged = 0usize;
        for oid in dctx(
            self.client.list_array_objects(&store).await,
            "list_array_objects",
            &mkey,
        )? {
            if live.contains(&oid) {
                continue;
            }
            // In shared containers, other forecasts' live arrays must
            // survive: only reclaim if no index references them. The
            // full mode gives each forecast its own store container, so
            // this check only matters for no-containers mode, where we
            // conservatively skip arrays not allocated by this process's
            // client id... cross-index liveness is checked by the caller
            // in shared-container deployments.
            if self.cfg.mode == FieldIoMode::NoContainers {
                continue;
            }
            match self.client.obj_punch(&store, oid).await {
                Ok(()) | Err(DaosError::ObjNotFound(_)) => purged += 1,
                Err(e) => return Err(FieldIoError::daos("obj_punch", mkey, e)),
            }
        }
        Ok(purged)
    }

    /// Wipes a forecast: punches every indexed Array, clears the forecast
    /// Key-Value and de-registers the forecast from the main index.
    /// Returns the number of fields removed. (An administrative
    /// operation, like FDB5's `wipe`; the benchmarked write path never
    /// deletes.) Pool space is not refunded — the paper's store never
    /// reclaims, and the snapshot format preserves that accounting.
    pub async fn wipe_forecast(&self, forecast: &FieldKey) -> FieldResult<usize> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            return Err(FieldIoError::daos(
                "wipe_forecast",
                forecast.canonical(),
                DaosError::InvalidArg("no-index mode keeps no listings to wipe"),
            ));
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let mkey = msk.canonical();
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let keys = dctx(
            self.client
                .kv_list_range(&index, fkv, Bytes::from_static(FIELD_KEYS_FROM), None)
                .await,
            "kv_list_range",
            &mkey,
        )?;
        let mut removed = 0usize;
        for k in keys {
            if let Some(raw) = dctx(self.client.kv_get(&index, fkv, &k).await, "kv_get", &mkey)? {
                if let Some(entry) = IndexEntry::decode(&raw) {
                    // Punch may fail if a concurrent wipe raced us; treat
                    // an absent object as already punched.
                    match self.client.obj_punch(&store, entry.oid).await {
                        Ok(()) | Err(DaosError::ObjNotFound(_)) => {}
                        Err(e) => return Err(FieldIoError::daos("obj_punch", mkey, e)),
                    }
                }
            }
            removed += 1;
        }
        // Drop the index object and the main registration.
        match self.client.obj_punch(&index, fkv).await {
            Ok(()) | Err(DaosError::ObjNotFound(_)) => {}
            Err(e) => return Err(FieldIoError::daos("obj_punch", mkey, e)),
        }
        self.cont_cache.borrow_mut().remove(&mkey);
        Ok(removed)
    }

    /// Lists the least-significant keys indexed for a forecast (tooling;
    /// not part of the benchmarked hot path).
    pub async fn list_fields(&self, forecast: &FieldKey) -> FieldResult<Vec<String>> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            return Err(FieldIoError::daos(
                "list_fields",
                forecast.canonical(),
                DaosError::InvalidArg("no-index mode keeps no listings"),
            ));
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let (index, _) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let keys = dctx(
            self.client
                .kv_list_range(&index, fkv, Bytes::from_static(FIELD_KEYS_FROM), None)
                .await,
            "kv_list_range",
            &msk.canonical(),
        )?;
        Ok(keys
            .into_iter()
            .map(|k| String::from_utf8_lossy(&k).into_owned())
            .collect())
    }

    // -- pipelined layer (DESIGN.md §6) ------------------------------------

    /// Starts a pipelined writer that keeps up to `window` field writes in
    /// flight. `window <= 1` degrades to one-at-a-time (still through the
    /// event queue, so the per-field KV-put/data-write overlap remains).
    pub fn pipelined_writer(&self, window: u32) -> PipelinedWriter<'_, D> {
        PipelinedWriter {
            fs: self,
            eq: EventQueue::new(self.client.clone()),
            window: window.max(1) as usize,
            pending: HashMap::new(),
            first_err: None,
        }
    }

    /// Launches one field write on `eq` as a composite operation: create
    /// the array, then run the data write (and close) concurrently with
    /// the index KV put. Containers and the oid are resolved inline so
    /// the composite touches only its own objects.
    async fn launch_write(
        &self,
        eq: &EventQueue<D>,
        key: &FieldKey,
        data: Bytes,
    ) -> FieldResult<Event> {
        let client = self.client.clone();
        if self.cfg.mode == FieldIoMode::NoIndex {
            let main = self.main.clone();
            let oid = self.noindex_oid(key);
            return Ok(eq.submit(async move {
                let h = client.array_open_or_create(&main, oid).await?;
                client.array_write(&main, &h, 0, data).await?;
                client.array_close(&main, h).await?;
                Ok(OpOutput::Unit)
            }));
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, true).await?;
        let oid = self.alloc.borrow_mut().next(self.cfg.array_class);
        let entry = self.index_entry_for(&msk, oid, data.len() as u64);
        let fkv = self.forecast_kv_oid(&msk);
        let lsk_bytes = lsk.canonical().into_bytes();
        Ok(eq.submit(async move {
            let h = client.array_create(&store, oid).await?;
            // The field's Array data write and its index KV update have
            // no mutual ordering constraint: overlap them.
            let data_client = client.clone();
            let data_store = store.clone();
            let data_branch: Pin<Box<dyn Future<Output = Result<(), DaosError>>>> =
                Box::pin(async move {
                    data_client.array_write(&data_store, &h, 0, data).await?;
                    data_client.array_close(&data_store, h).await
                });
            let index_branch: Pin<Box<dyn Future<Output = Result<(), DaosError>>>> = Box::pin(
                async move { client.kv_put(&index, fkv, &lsk_bytes, entry.encode()).await },
            );
            for r in join_all(vec![data_branch, index_branch]).await {
                r?;
            }
            Ok(OpOutput::Unit)
        }))
    }

    /// Reads many fields with up to `window` in flight, returning results
    /// in input order. Each field's index lookup, array open, data read
    /// and close run as one composite operation; distinct fields overlap.
    pub async fn read_fields_pipelined(
        &self,
        keys: &[FieldKey],
        window: u32,
    ) -> Vec<FieldResult<Bytes>> {
        let window = window.max(1) as usize;
        let eq = EventQueue::new(self.client.clone());
        let mut results: Vec<Option<FieldResult<Bytes>>> = Vec::new();
        results.resize_with(keys.len(), || None);
        let mut slots: HashMap<Event, usize> = HashMap::new();

        fn absorb(
            results: &mut [Option<FieldResult<Bytes>>],
            slots: &mut HashMap<Event, usize>,
            keys: &[FieldKey],
            ev: Event,
            res: Result<OpOutput, DaosError>,
        ) {
            let slot = slots.remove(&ev).expect("unknown event completed");
            let kc = keys[slot].canonical();
            results[slot] = Some(match res {
                Ok(OpOutput::Data(d)) => Ok(d),
                Ok(other) => panic!("read composite resolved to {other:?}"),
                // Sentinels the composite uses for index misses.
                Err(DaosError::KeyNotFound(_)) | Err(DaosError::ObjNotFound(_)) => {
                    Err(FieldIoError::FieldNotFound(kc))
                }
                Err(DaosError::InvalidArg("bad index entry")) => {
                    Err(FieldIoError::BadIndexEntry(kc))
                }
                Err(e) => Err(FieldIoError::daos("read_field", kc, e)),
            });
        }

        for (i, key) in keys.iter().enumerate() {
            for (ev, res) in eq.wait_capacity(window).await {
                absorb(&mut results, &mut slots, keys, ev, res);
            }
            match self.launch_read(&eq, key).await {
                Ok(ev) => {
                    slots.insert(ev, i);
                }
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        while let Some((ev, res)) = eq.wait().await {
            absorb(&mut results, &mut slots, keys, ev, res);
        }
        results
            .into_iter()
            .map(|r| r.expect("every field resolved"))
            .collect()
    }

    /// Launches one composite field read on `eq`. Index-miss conditions
    /// are reported through [`DaosError`] sentinels that
    /// [`FieldStore::read_fields_pipelined`] maps back to
    /// [`FieldIoError::FieldNotFound`]/[`FieldIoError::BadIndexEntry`].
    async fn launch_read(&self, eq: &EventQueue<D>, key: &FieldKey) -> FieldResult<Event> {
        let client = self.client.clone();
        if self.cfg.mode == FieldIoMode::NoIndex {
            let main = self.main.clone();
            let oid = self.noindex_oid(key);
            return Ok(eq.submit(async move {
                let h = client.array_open(&main, oid).await?;
                let len = client.array_size(&main, &h).await?;
                let data = client.array_read(&main, &h, 0, len).await?;
                client.array_close(&main, h).await?;
                Ok(OpOutput::Data(data))
            }));
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let lsk_bytes = lsk.canonical().into_bytes();
        Ok(eq.submit(async move {
            let raw = client
                .kv_get(&index, fkv, &lsk_bytes)
                .await?
                .ok_or_else(|| {
                    DaosError::KeyNotFound(String::from_utf8_lossy(&lsk_bytes).into_owned())
                })?;
            let entry = IndexEntry::decode(&raw).ok_or(DaosError::InvalidArg("bad index entry"))?;
            let h = client.array_open(&store, entry.oid).await?;
            let data = client.array_read(&store, &h, 0, entry.len).await?;
            client.array_close(&store, h).await?;
            Ok(OpOutput::Data(data))
        }))
    }
}

/// What the pipelined writer remembers about one in-flight field write.
struct PendingWrite {
    key: String,
    cb: Option<Box<dyn FnOnce(FieldResult<()>)>>,
}

/// A windowed, FDB-style asynchronous field writer (DESIGN.md §6).
///
/// [`submit`](PipelinedWriter::submit) launches Algorithm 1 for one field
/// as a composite event-queue operation and returns as soon as the
/// in-flight count drops below the window — so up to W fields progress
/// concurrently, and within each field the index KV put overlaps the
/// Array data write. [`flush`](PipelinedWriter::flush) drains the queue.
///
/// Errors are write-behind: a failed field write surfaces on a later
/// `submit` or on `flush` (first error wins), unless the field was
/// submitted with a completion callback, which then owns the result.
pub struct PipelinedWriter<'a, D: DaosApi> {
    fs: &'a FieldStore<D>,
    eq: EventQueue<D>,
    window: usize,
    pending: HashMap<Event, PendingWrite>,
    first_err: Option<FieldIoError>,
}

impl<D: DaosApi> PipelinedWriter<'_, D> {
    /// Number of field writes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.eq.in_flight()
    }

    /// The writer's in-flight window W.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Submits one field write, waiting first if the window is full.
    /// Returns the first write-behind error, if any has occurred.
    pub async fn submit(&mut self, key: &FieldKey, data: Bytes) -> FieldResult<()> {
        self.submit_inner(key, data, None).await
    }

    /// Like [`submit`](PipelinedWriter::submit), but delivers this
    /// field's result to `cb` at completion time instead of write-behind.
    pub async fn submit_with(
        &mut self,
        key: &FieldKey,
        data: Bytes,
        cb: impl FnOnce(FieldResult<()>) + 'static,
    ) -> FieldResult<()> {
        self.submit_inner(key, data, Some(Box::new(cb))).await
    }

    async fn submit_inner(
        &mut self,
        key: &FieldKey,
        data: Bytes,
        cb: Option<Box<dyn FnOnce(FieldResult<()>)>>,
    ) -> FieldResult<()> {
        if let Some(e) = &self.first_err {
            return Err(e.clone());
        }
        for c in self.eq.wait_capacity(self.window).await {
            self.absorb(c);
        }
        let kc = key.canonical();
        match self.fs.launch_write(&self.eq, key, data).await {
            Ok(ev) => {
                self.pending.insert(ev, PendingWrite { key: kc, cb });
                Ok(())
            }
            // Inline resolution failed before launch; deliver the error
            // the same way a completion would have been.
            Err(e) => match cb {
                Some(cb) => {
                    cb(Err(e));
                    Ok(())
                }
                None => {
                    self.first_err.get_or_insert(e.clone());
                    Err(e)
                }
            },
        }
    }

    fn absorb(&mut self, (ev, res): (Event, Result<OpOutput, DaosError>)) {
        let p = self
            .pending
            .remove(&ev)
            .expect("completion for unknown write");
        let out = match res {
            Ok(_) => Ok(()),
            Err(e) => Err(FieldIoError::daos("write_field", p.key, e)),
        };
        match p.cb {
            Some(cb) => cb(out),
            None => {
                if let Err(e) = out {
                    self.first_err.get_or_insert(e);
                }
            }
        }
    }

    /// Waits for every in-flight write, delivering callbacks, and returns
    /// the first write-behind error (if any). The writer is reusable
    /// afterwards.
    pub async fn flush(&mut self) -> FieldResult<()> {
        while let Some(c) = self.eq.wait().await {
            self.absorb(c);
        }
        match self.first_err.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daosim_objstore::prelude::EmbeddedClient;
    use daosim_objstore::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    fn key(step: u32) -> FieldKey {
        FieldKey::from_pairs([
            ("class", "od"),
            ("date", "20201224"),
            ("time", "0000"),
            ("expver", "0001"),
            ("param", "t"),
            ("levelist", "500"),
            ("step", &step.to_string()),
        ])
    }

    fn store(mode: FieldIoMode) -> FieldStore<EmbeddedClient> {
        let (_s, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        block_on(FieldStore::connect(
            client,
            FieldIoConfig::builder().mode(mode).build(),
            1,
        ))
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip_all_modes() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            let data = Bytes::from(vec![0x5a; 1024 * 1024]);
            block_on(fs.write_field(&key(24), data.clone())).unwrap();
            let back = block_on(fs.read_field(&key(24))).unwrap();
            assert_eq!(back, data, "mode {mode}");
        }
    }

    #[test]
    fn missing_field_fails_per_algorithm_2() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            match block_on(fs.read_field(&key(24))) {
                Err(FieldIoError::FieldNotFound(_)) => {}
                other => panic!("mode {mode}: expected FieldNotFound, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_field_in_existing_forecast_fails() {
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        match block_on(fs.read_field(&key(48))) {
            Err(FieldIoError::FieldNotFound(_)) => {}
            other => panic!("expected FieldNotFound, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_returns_latest_and_keeps_old_array() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            block_on(fs.write_field(&key(24), Bytes::from_static(b"version-1"))).unwrap();
            block_on(fs.write_field(&key(24), Bytes::from_static(b"version-2"))).unwrap();
            let back = block_on(fs.read_field(&key(24))).unwrap();
            assert_eq!(back.as_ref(), b"version-2", "mode {mode}");
        }
        // In indexed modes the old array is de-referenced, not deleted:
        // the store container keeps both objects.
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"a"))).unwrap();
        block_on(fs.write_field(&key(24), Bytes::from_static(b"b"))).unwrap();
        let pool = fs.client().pool().clone();
        let store_cont = pool
            .cont_open(Uuid::from_name(
                format!(
                    "cont-store:{}",
                    key(24).split(&KeySchema::ecmwf()).0.canonical()
                )
                .as_bytes(),
            ))
            .unwrap();
        assert_eq!(store_cont.object_count(), 2);
    }

    #[test]
    fn full_mode_uses_separate_containers() {
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        // main + index + store containers.
        assert_eq!(pool.cont_count(), 3);
    }

    #[test]
    fn no_containers_mode_stays_in_main() {
        let fs = store(FieldIoMode::NoContainers);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        assert_eq!(pool.cont_count(), 1);
    }

    #[test]
    fn no_index_mode_creates_no_kvs() {
        let fs = store(FieldIoMode::NoIndex);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        let main = pool.cont_open(main_container_uuid()).unwrap();
        // Exactly one object: the md5-addressed array.
        assert_eq!(main.object_count(), 1);
    }

    #[test]
    fn distinct_forecasts_get_distinct_containers() {
        let fs = store(FieldIoMode::Full);
        let mut k2 = key(24);
        k2.set("date", "20201225");
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        block_on(fs.write_field(&k2, Bytes::from_static(b"y"))).unwrap();
        assert_eq!(fs.client().pool().cont_count(), 5);
        assert_eq!(block_on(fs.read_field(&k2)).unwrap().as_ref(), b"y");
    }

    #[test]
    fn list_fields_returns_lsk_entries() {
        let fs = store(FieldIoMode::Full);
        for step in [0u32, 24, 48] {
            block_on(fs.write_field(&key(step), Bytes::from_static(b"x"))).unwrap();
        }
        let mut listed = block_on(fs.list_fields(&key(0))).unwrap();
        listed.sort();
        assert_eq!(
            listed,
            vec![
                "levelist=500,param=t,step=0",
                "levelist=500,param=t,step=24",
                "levelist=500,param=t,step=48"
            ]
        );
    }

    #[test]
    fn purge_reclaims_only_dereferenced_arrays() {
        let fs = store(FieldIoMode::Full);
        // Three fields; re-write one of them twice -> 2 dead arrays.
        for step in [0u32, 24, 48] {
            block_on(fs.write_field(&key(step), Bytes::from_static(b"v1"))).unwrap();
        }
        block_on(fs.write_field(&key(24), Bytes::from_static(b"v2"))).unwrap();
        block_on(fs.write_field(&key(24), Bytes::from_static(b"v3"))).unwrap();
        let pool = fs.client().pool().clone();
        let store_cont = pool
            .cont_open(Uuid::from_name(
                format!(
                    "cont-store:{}",
                    key(24).split(&KeySchema::ecmwf()).0.canonical()
                )
                .as_bytes(),
            ))
            .unwrap();
        assert_eq!(store_cont.object_count(), 5);
        let purged = block_on(fs.purge_dereferenced(&key(0))).unwrap();
        assert_eq!(purged, 2);
        assert_eq!(store_cont.object_count(), 3);
        // Live data is untouched.
        assert_eq!(block_on(fs.read_field(&key(24))).unwrap().as_ref(), b"v3");
        assert_eq!(block_on(fs.read_field(&key(0))).unwrap().as_ref(), b"v1");
        // Purge is idempotent.
        assert_eq!(block_on(fs.purge_dereferenced(&key(0))).unwrap(), 0);
    }

    #[test]
    fn purge_is_conservative_in_shared_container_modes() {
        let fs = store(FieldIoMode::NoContainers);
        block_on(fs.write_field(&key(0), Bytes::from_static(b"a"))).unwrap();
        block_on(fs.write_field(&key(0), Bytes::from_static(b"b"))).unwrap();
        // Shared main container: nothing is reclaimed (cross-forecast
        // liveness cannot be decided locally).
        assert_eq!(block_on(fs.purge_dereferenced(&key(0))).unwrap(), 0);
        assert_eq!(block_on(fs.read_field(&key(0))).unwrap().as_ref(), b"b");
        // no-index mode reclaims nothing either, by construction.
        let ni = store(FieldIoMode::NoIndex);
        block_on(ni.write_field(&key(0), Bytes::from_static(b"x"))).unwrap();
        assert_eq!(block_on(ni.purge_dereferenced(&key(0))).unwrap(), 0);
    }

    #[test]
    fn wipe_forecast_removes_fields_and_listing() {
        for mode in [FieldIoMode::Full, FieldIoMode::NoContainers] {
            let fs = store(mode);
            for step in [0u32, 24, 48] {
                block_on(fs.write_field(&key(step), Bytes::from_static(b"x"))).unwrap();
            }
            let removed = block_on(fs.wipe_forecast(&key(0))).unwrap();
            assert_eq!(removed, 3, "mode {mode}");
            match block_on(fs.read_field(&key(24))) {
                Err(FieldIoError::FieldNotFound(_)) => {}
                other => panic!("mode {mode}: expected FieldNotFound, got {other:?}"),
            }
            assert!(block_on(fs.list_fields(&key(0))).unwrap().is_empty());
            // The forecast can be repopulated afterwards.
            block_on(fs.write_field(&key(6), Bytes::from_static(b"fresh"))).unwrap();
            assert_eq!(block_on(fs.read_field(&key(6))).unwrap().as_ref(), b"fresh");
        }
    }

    #[test]
    fn wipe_is_rejected_in_no_index_mode() {
        let fs = store(FieldIoMode::NoIndex);
        assert!(block_on(fs.wipe_forecast(&key(0))).is_err());
    }

    #[test]
    fn index_entry_codec_roundtrip() {
        let e = IndexEntry {
            store_cont: Uuid::from_name(b"c"),
            oid: Oid::generate(3, 77, ObjectClass::S2),
            len: 5 * 1024 * 1024,
        };
        assert_eq!(IndexEntry::decode(&e.encode()), Some(e));
        assert_eq!(IndexEntry::decode(b"short"), None);
    }

    #[test]
    fn concurrent_processes_share_forecast_containers() {
        // Two processes (two FieldStores over the same pool) writing the
        // same forecast agree on container identity via md5 naming.
        let (_s, pool) = DaosStore::with_single_pool(24);
        let fs1 = block_on(FieldStore::connect(
            EmbeddedClient::new(pool.clone()),
            FieldIoConfig::builder().mode(FieldIoMode::Full).build(),
            1,
        ))
        .unwrap();
        let fs2 = block_on(FieldStore::connect(
            EmbeddedClient::new(pool.clone()),
            FieldIoConfig::builder().mode(FieldIoMode::Full).build(),
            2,
        ))
        .unwrap();
        let mut ka = key(0);
        ka.set("param", "u");
        let mut kb = key(0);
        kb.set("param", "v");
        block_on(fs1.write_field(&ka, Bytes::from_static(b"from-1"))).unwrap();
        block_on(fs2.write_field(&kb, Bytes::from_static(b"from-2"))).unwrap();
        // Still only 3 containers; each store reads the other's field.
        assert_eq!(pool.cont_count(), 3);
        assert_eq!(block_on(fs1.read_field(&kb)).unwrap().as_ref(), b"from-2");
        assert_eq!(block_on(fs2.read_field(&ka)).unwrap().as_ref(), b"from-1");
    }

    // -- new-in-this-PR surface --------------------------------------------

    #[test]
    fn builder_mode_only_differs_from_default_in_mode() {
        for mode in FieldIoMode::all() {
            let a = FieldIoConfig::builder().mode(mode).build();
            let d = FieldIoConfig::default();
            assert_eq!(a.mode, mode);
            assert_eq!(a.kv_class, d.kv_class);
            assert_eq!(a.array_class, d.array_class);
            assert_eq!(a.inflight_window, d.inflight_window);
            assert_eq!(a.inflight_window, 1);
        }
        let w = FieldIoConfig::builder().window(8).build();
        assert_eq!(w.inflight_window, 8);
        // Window 0 is meaningless; clamp to sequential.
        assert_eq!(
            FieldIoConfig::builder().window(0).build().inflight_window,
            1
        );
    }

    #[test]
    fn errors_carry_operation_and_key_context() {
        // Writing into an exhausted pool surfaces a contextualised DAOS
        // error naming the failing op and the field key.
        let store = DaosStore::new();
        let pool = store
            .pool_create(Uuid::from_name(b"tiny"), 4, 4096)
            .unwrap();
        let fs = block_on(FieldStore::connect(
            EmbeddedClient::new(pool),
            FieldIoConfig::default(),
            1,
        ))
        .unwrap();
        let err = block_on(fs.write_field(&key(24), Bytes::from(vec![1u8; 1 << 20]))).unwrap_err();
        match &err {
            FieldIoError::Daos { op, key: k, source } => {
                assert_eq!(*op, "array_write");
                assert!(k.contains("class=od"), "key context missing: {k}");
                assert_eq!(*source, DaosError::NoSpace);
            }
            other => panic!("expected contextual Daos error, got {other:?}"),
        }
        assert!(!err.is_transient());
        assert!(err.daos_source().is_some());
        assert!(err.to_string().contains("failed for"));
        // Not-found paths stay non-DAOS and non-transient.
        let nf = FieldIoError::FieldNotFound("k".into());
        assert!(!nf.is_transient());
        assert!(nf.daos_source().is_none());
    }

    #[test]
    fn pipelined_writer_roundtrips_on_embedded() {
        for mode in FieldIoMode::all() {
            for window in [1u32, 4] {
                let fs = store(mode);
                block_on(async {
                    let mut w = fs.pipelined_writer(window);
                    for step in 0..12u32 {
                        w.submit(&key(step), Bytes::from(format!("field-{step}")))
                            .await
                            .unwrap();
                    }
                    w.flush().await.unwrap();
                });
                for step in 0..12u32 {
                    assert_eq!(
                        block_on(fs.read_field(&key(step))).unwrap().as_ref(),
                        format!("field-{step}").as_bytes(),
                        "mode {mode} window {window}"
                    );
                }
            }
        }
    }

    #[test]
    fn pipelined_writer_delivers_callbacks() {
        use std::rc::Rc;
        let fs = store(FieldIoMode::Full);
        let done: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        block_on(async {
            let mut w = fs.pipelined_writer(4);
            for step in [0u32, 24, 48] {
                let done = Rc::clone(&done);
                w.submit_with(&key(step), Bytes::from_static(b"x"), move |r| {
                    r.unwrap();
                    done.borrow_mut().push(step);
                })
                .await
                .unwrap();
            }
            w.flush().await.unwrap();
        });
        let mut got = done.borrow().clone();
        got.sort();
        assert_eq!(got, vec![0, 24, 48]);
    }

    #[test]
    fn pipelined_writer_reports_write_behind_errors() {
        // A pool too small for the field: the failure surfaces on flush
        // (write-behind), attributed to write_field with its key.
        let store = DaosStore::new();
        let pool = store
            .pool_create(Uuid::from_name(b"tiny-pipelined"), 4, 4096)
            .unwrap();
        let fs = block_on(FieldStore::connect(
            EmbeddedClient::new(pool),
            FieldIoConfig::default(),
            1,
        ))
        .unwrap();
        let err = block_on(async {
            let mut w = fs.pipelined_writer(2);
            let _ = w.submit(&key(0), Bytes::from(vec![0u8; 1 << 20])).await;
            w.flush().await
        });
        match err {
            Err(e) => assert!(e.daos_source().is_some(), "{e:?}"),
            Ok(()) => panic!("expected a write-behind error"),
        }
    }

    #[test]
    fn read_fields_pipelined_preserves_input_order() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            for step in 0..8u32 {
                block_on(fs.write_field(&key(step), Bytes::from(format!("v{step}")))).unwrap();
            }
            let mut keys: Vec<FieldKey> = (0..8u32).map(key).collect();
            keys.push(key(999)); // never written
            let out = block_on(fs.read_fields_pipelined(&keys, 4));
            assert_eq!(out.len(), 9);
            for (step, r) in out.iter().take(8).enumerate() {
                assert_eq!(
                    r.as_ref().unwrap().as_ref(),
                    format!("v{step}").as_bytes(),
                    "mode {mode}"
                );
            }
            match &out[8] {
                Err(FieldIoError::FieldNotFound(_)) => {}
                other => panic!("mode {mode}: expected FieldNotFound, got {other:?}"),
            }
        }
    }
}
