//! The field I/O functions — the paper's primary contribution (§4).
//!
//! Weather fields are written and read through a three-layer scheme over
//! DAOS concepts (paper Fig. 2):
//!
//! * a **main Key-Value** (its own container) maps the most-significant
//!   key part to the forecast's *index container*;
//! * a **forecast Key-Value** in the index container maps the
//!   least-significant key part to the forecast *store container* and an
//!   Array object id (plus length, as FDB5 index entries do);
//! * the field bytes live in that **Array**.
//!
//! Container UUIDs are md5 sums of the most-significant key part, so
//! concurrent processes racing to create a forecast's containers converge
//! on the same identity (Algorithm 1's race-avoidance rule). A re-write
//! of an existing key creates a *new* Array and re-points the index: no
//! read-modify-write, and de-referenced arrays are never deleted.
//!
//! Three modes (paper §5.2):
//! * [`FieldIoMode::Full`] — the scheme above;
//! * [`FieldIoMode::NoContainers`] — same indexes, but every object lives
//!   in the main container;
//! * [`FieldIoMode::NoIndex`] — no Key-Values at all: the Array oid is
//!   md5 of the full field key, in the main container.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

use daosim_objstore::api::{DaosApi, OidAllocator};
use daosim_objstore::{DaosError, ObjectClass, Oid, Uuid};

use crate::key::{FieldKey, KeyPart, KeySchema};

/// Which parts of the scheme are active.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FieldIoMode {
    #[default]
    Full,
    NoContainers,
    NoIndex,
}

impl FieldIoMode {
    pub fn name(self) -> &'static str {
        match self {
            FieldIoMode::Full => "full",
            FieldIoMode::NoContainers => "no-containers",
            FieldIoMode::NoIndex => "no-index",
        }
    }

    pub fn all() -> [FieldIoMode; 3] {
        [
            FieldIoMode::Full,
            FieldIoMode::NoContainers,
            FieldIoMode::NoIndex,
        ]
    }
}

impl fmt::Display for FieldIoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the field I/O functions.
#[derive(Clone, Debug)]
pub struct FieldIoConfig {
    pub mode: FieldIoMode,
    /// Object class for every Key-Value (paper default: `SX`).
    pub kv_class: ObjectClass,
    /// Object class for field Arrays (paper default: `S1`).
    pub array_class: ObjectClass,
    pub schema: KeySchema,
}

impl Default for FieldIoConfig {
    fn default() -> Self {
        FieldIoConfig {
            mode: FieldIoMode::Full,
            kv_class: ObjectClass::SX,
            array_class: ObjectClass::S1,
            schema: KeySchema::ecmwf(),
        }
    }
}

impl FieldIoConfig {
    pub fn with_mode(mode: FieldIoMode) -> Self {
        FieldIoConfig {
            mode,
            ..Default::default()
        }
    }
}

/// Errors from the field I/O layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FieldIoError {
    /// Algorithm 2's "fail" branches: the key is not indexed.
    FieldNotFound(String),
    /// A corrupt or truncated index entry.
    BadIndexEntry(String),
    Daos(DaosError),
}

impl fmt::Display for FieldIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldIoError::FieldNotFound(k) => write!(f, "field not found: {k}"),
            FieldIoError::BadIndexEntry(k) => write!(f, "bad index entry for {k}"),
            FieldIoError::Daos(e) => write!(f, "daos error: {e}"),
        }
    }
}

impl std::error::Error for FieldIoError {}

impl From<DaosError> for FieldIoError {
    fn from(e: DaosError) -> Self {
        FieldIoError::Daos(e)
    }
}

pub type FieldResult<T> = std::result::Result<T, FieldIoError>;

/// An index entry: store container, array oid, field length.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndexEntry {
    pub store_cont: Uuid,
    pub oid: Oid,
    pub len: u64,
}

impl IndexEntry {
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16 + 16 + 8);
        b.put_slice(self.store_cont.as_bytes());
        let (hi32, lo) = self.oid.user_bits();
        // Re-encode class+user bits losslessly.
        b.put_u8(match self.oid.class() {
            ObjectClass::S1 => 1,
            ObjectClass::S2 => 2,
            ObjectClass::SX => 3,
            ObjectClass::RP2 => 4,
            ObjectClass::EC2P1 => 5,
        });
        b.put_u32(hi32);
        b.put_u64(lo);
        b.put_u64(self.len);
        b.freeze()
    }

    pub fn decode(data: &[u8]) -> Option<IndexEntry> {
        if data.len() != 16 + 1 + 4 + 8 + 8 {
            return None;
        }
        let mut u = [0u8; 16];
        u.copy_from_slice(&data[..16]);
        let class = match data[16] {
            1 => ObjectClass::S1,
            2 => ObjectClass::S2,
            3 => ObjectClass::SX,
            4 => ObjectClass::RP2,
            5 => ObjectClass::EC2P1,
            _ => return None,
        };
        let hi32 = u32::from_be_bytes(data[17..21].try_into().ok()?);
        let lo = u64::from_be_bytes(data[21..29].try_into().ok()?);
        let len = u64::from_be_bytes(data[29..37].try_into().ok()?);
        Some(IndexEntry {
            store_cont: Uuid(u),
            oid: Oid::generate(hi32, lo, class),
            len,
        })
    }
}

/// A process's handle onto the weather-field store: the field write and
/// read functions with per-process connection caching (paper §5.2).
///
/// ```
/// use bytes::Bytes;
/// use daosim_core::fieldio::{FieldIoConfig, FieldStore};
/// use daosim_core::key::FieldKey;
/// use daosim_kernel::Sim;
/// use daosim_objstore::{DaosStore, EmbeddedClient};
///
/// let (_store, pool) = DaosStore::with_single_pool(24);
/// Sim::new().block_on(async move {
///     let fs = FieldStore::connect(EmbeddedClient::new(pool), FieldIoConfig::default(), 1)
///         .await
///         .unwrap();
///     let key = FieldKey::from_pairs([("class", "od"), ("param", "t"), ("step", "24")]);
///     fs.write_field(&key, Bytes::from_static(b"grib")).await.unwrap();
///     assert_eq!(fs.read_field(&key).await.unwrap().as_ref(), b"grib");
/// });
/// ```
pub struct FieldStore<D: DaosApi> {
    client: D,
    cfg: FieldIoConfig,
    main: D::Cont,
    main_kv: Oid,
    alloc: RefCell<OidAllocator>,
    /// msk canonical -> (index container, store container) handles.
    cont_cache: RefCell<HashMap<String, ContPair<D>>>,
}

/// Cached (index container, store container) handles for one forecast.
type ContPair<D> = (<D as DaosApi>::Cont, <D as DaosApi>::Cont);

/// The UUID of the main container (a deployment-wide constant).
pub fn main_container_uuid() -> Uuid {
    Uuid::from_name(b"daosim:main-container")
}

impl<D: DaosApi> FieldStore<D> {
    /// Connects a process to the store: opens (or creates) the main
    /// container. `client_id` must be unique per process — it namespaces
    /// the oids this process allocates.
    pub async fn connect(client: D, cfg: FieldIoConfig, client_id: u32) -> FieldResult<Self> {
        let main = client.cont_open_or_create(main_container_uuid()).await?;
        let main_kv = Oid::from_digest(&Uuid::from_name(b"daosim:main-kv"), cfg.kv_class);
        Ok(FieldStore {
            client,
            cfg,
            main,
            main_kv,
            alloc: RefCell::new(OidAllocator::new(client_id)),
            cont_cache: RefCell::new(HashMap::new()),
        })
    }

    pub fn config(&self) -> &FieldIoConfig {
        &self.cfg
    }

    pub fn client(&self) -> &D {
        &self.client
    }

    fn forecast_kv_oid(&self, msk: &KeyPart) -> Oid {
        let digest = Uuid::from_name(format!("fkv:{}", msk.canonical()).as_bytes());
        Oid::from_digest(&digest, self.cfg.kv_class)
    }

    fn noindex_oid(&self, key: &FieldKey) -> Oid {
        let digest = Uuid::from_name(format!("field:{}", key.canonical()).as_bytes());
        Oid::from_digest(&digest, self.cfg.array_class)
    }

    /// Opens (or creates, registering in the main KV) the forecast's
    /// index and store containers, cached per process.
    async fn forecast_containers(
        &self,
        msk: &KeyPart,
        create_if_absent: bool,
    ) -> FieldResult<(D::Cont, D::Cont)> {
        let mkey = msk.canonical();
        if let Some(pair) = self.cont_cache.borrow().get(&mkey) {
            return Ok(pair.clone());
        }
        if self.cfg.mode == FieldIoMode::NoContainers {
            // Indexing layers stay; container layers collapse to main.
            let pair = (self.main.clone(), self.main.clone());
            // Still register the forecast in the main KV, as the real
            // functions do (the index layering is mode-independent).
            let registered = self
                .client
                .kv_get(&self.main, self.main_kv, mkey.as_bytes())
                .await?
                .is_some();
            if !registered {
                if !create_if_absent {
                    return Err(FieldIoError::FieldNotFound(mkey));
                }
                self.client
                    .kv_put(
                        &self.main,
                        self.main_kv,
                        mkey.as_bytes(),
                        Bytes::copy_from_slice(main_container_uuid().as_bytes()),
                    )
                    .await?;
            }
            self.cont_cache.borrow_mut().insert(mkey, pair.clone());
            return Ok(pair);
        }

        // Full mode: query the main KV for the forecast's index container.
        let index_uuid = Uuid::from_name(format!("cont-index:{mkey}").as_bytes());
        let store_uuid = Uuid::from_name(format!("cont-store:{mkey}").as_bytes());
        let hit = self
            .client
            .kv_get(&self.main, self.main_kv, mkey.as_bytes())
            .await?;
        let pair = if hit.is_some() {
            let index = self.client.cont_open(index_uuid).await?;
            let store = self.client.cont_open(store_uuid).await?;
            (index, store)
        } else {
            if !create_if_absent {
                return Err(FieldIoError::FieldNotFound(mkey));
            }
            // Create both containers (md5-named: racing creators agree),
            // record the store container id in a special entry of the
            // newly created forecast KV, then register in the main KV.
            let index = self.client.cont_open_or_create(index_uuid).await?;
            let store = self.client.cont_open_or_create(store_uuid).await?;
            let fkv = self.forecast_kv_oid(msk);
            self.client
                .kv_put(
                    &index,
                    fkv,
                    b"__store_container__",
                    Bytes::copy_from_slice(store_uuid.as_bytes()),
                )
                .await?;
            self.client
                .kv_put(
                    &self.main,
                    self.main_kv,
                    mkey.as_bytes(),
                    Bytes::copy_from_slice(index_uuid.as_bytes()),
                )
                .await?;
            (index, store)
        };
        self.cont_cache.borrow_mut().insert(mkey, pair.clone());
        Ok(pair)
    }

    /// Algorithm 1: field write.
    pub async fn write_field(&self, key: &FieldKey, data: Bytes) -> FieldResult<()> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            let oid = self.noindex_oid(key);
            self.client.array_open_or_create(&self.main, oid).await?;
            self.client.array_write(&self.main, oid, 0, data).await?;
            self.client.array_close(&self.main, oid).await?;
            return Ok(());
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, true).await?;
        // Write the field into a brand-new Array in the store container.
        let oid = self.alloc.borrow_mut().next(self.cfg.array_class);
        let len = data.len() as u64;
        self.client.array_create(&store, oid).await?;
        self.client.array_write(&store, oid, 0, data).await?;
        self.client.array_close(&store, oid).await?;
        // Index it in the forecast KV (re-writes re-point the entry; the
        // previous array is de-referenced but never deleted).
        let entry = IndexEntry {
            store_cont: if self.cfg.mode == FieldIoMode::NoContainers {
                main_container_uuid()
            } else {
                Uuid::from_name(format!("cont-store:{}", msk.canonical()).as_bytes())
            },
            oid,
            len,
        };
        let fkv = self.forecast_kv_oid(&msk);
        self.client
            .kv_put(&index, fkv, lsk.canonical().as_bytes(), entry.encode())
            .await?;
        Ok(())
    }

    /// Algorithm 2: field read.
    pub async fn read_field(&self, key: &FieldKey) -> FieldResult<Bytes> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            let oid = self.noindex_oid(key);
            self.client
                .array_open(&self.main, oid)
                .await
                .map_err(|e| match e {
                    DaosError::ObjNotFound(_) => FieldIoError::FieldNotFound(key.canonical()),
                    other => FieldIoError::Daos(other),
                })?;
            let len = self.client.array_size(&self.main, oid).await?;
            let data = self.client.array_read(&self.main, oid, 0, len).await?;
            self.client.array_close(&self.main, oid).await?;
            return Ok(data);
        }
        let (msk, lsk) = key.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let raw = self
            .client
            .kv_get(&index, fkv, lsk.canonical().as_bytes())
            .await?
            .ok_or_else(|| FieldIoError::FieldNotFound(key.canonical()))?;
        let entry =
            IndexEntry::decode(&raw).ok_or_else(|| FieldIoError::BadIndexEntry(key.canonical()))?;
        self.client.array_open(&store, entry.oid).await?;
        let data = self
            .client
            .array_read(&store, entry.oid, 0, entry.len)
            .await?;
        self.client.array_close(&store, entry.oid).await?;
        Ok(data)
    }

    /// Purges de-referenced arrays of a forecast: every Array in the
    /// forecast's store container that the index no longer points to is
    /// punched. The write path deliberately never deletes (paper §4);
    /// this is the corresponding offline reclamation pass (FDB5's
    /// `purge`). Returns the number of arrays reclaimed.
    pub async fn purge_dereferenced(&self, forecast: &FieldKey) -> FieldResult<usize> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            // md5-stable oids are always "referenced" by construction.
            return Ok(0);
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        // Collect the oids the index still references.
        let mut live: std::collections::HashSet<Oid> = std::collections::HashSet::new();
        for k in self.client.kv_list_keys(&index, fkv).await? {
            if k == b"__store_container__" {
                continue;
            }
            if let Some(raw) = self.client.kv_get(&index, fkv, &k).await? {
                if let Some(entry) = IndexEntry::decode(&raw) {
                    live.insert(entry.oid);
                }
            }
        }
        // Punch every array in the store container that is not live. The
        // listing comes from the backing container handle; in
        // no-containers mode the store container is the main container,
        // which also holds KV objects and other forecasts' arrays — only
        // punch arrays allocated by field writes that this forecast's
        // index no longer references. We recognise them by probing the
        // object as an Array and skipping anything still referenced.
        let mut purged = 0usize;
        for oid in self.client.list_array_objects(&store).await? {
            if live.contains(&oid) {
                continue;
            }
            // In shared containers, other forecasts' live arrays must
            // survive: only reclaim if no index references them. The
            // full mode gives each forecast its own store container, so
            // this check only matters for no-containers mode, where we
            // conservatively skip arrays not allocated by this process's
            // client id... cross-index liveness is checked by the caller
            // in shared-container deployments.
            if self.cfg.mode == FieldIoMode::NoContainers {
                continue;
            }
            match self.client.obj_punch(&store, oid).await {
                Ok(()) | Err(DaosError::ObjNotFound(_)) => purged += 1,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(purged)
    }

    /// Wipes a forecast: punches every indexed Array, clears the forecast
    /// Key-Value and de-registers the forecast from the main index.
    /// Returns the number of fields removed. (An administrative
    /// operation, like FDB5's `wipe`; the benchmarked write path never
    /// deletes.) Pool space is not refunded — the paper's store never
    /// reclaims, and the snapshot format preserves that accounting.
    pub async fn wipe_forecast(&self, forecast: &FieldKey) -> FieldResult<usize> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            return Err(FieldIoError::Daos(DaosError::InvalidArg(
                "no-index mode keeps no listings to wipe",
            )));
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let (index, store) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let keys = self.client.kv_list_keys(&index, fkv).await?;
        let mut removed = 0usize;
        for k in keys {
            if k == b"__store_container__" {
                continue;
            }
            if let Some(raw) = self.client.kv_get(&index, fkv, &k).await? {
                if let Some(entry) = IndexEntry::decode(&raw) {
                    // Punch may fail if a concurrent wipe raced us; treat
                    // an absent object as already punched.
                    match self.client.obj_punch(&store, entry.oid).await {
                        Ok(()) | Err(DaosError::ObjNotFound(_)) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            removed += 1;
        }
        // Drop the index object and the main registration.
        match self.client.obj_punch(&index, fkv).await {
            Ok(()) | Err(DaosError::ObjNotFound(_)) => {}
            Err(e) => return Err(e.into()),
        }
        self.cont_cache.borrow_mut().remove(&msk.canonical());
        Ok(removed)
    }

    /// Lists the least-significant keys indexed for a forecast (tooling;
    /// not part of the benchmarked hot path).
    pub async fn list_fields(&self, forecast: &FieldKey) -> FieldResult<Vec<String>> {
        if self.cfg.mode == FieldIoMode::NoIndex {
            return Err(FieldIoError::Daos(DaosError::InvalidArg(
                "no-index mode keeps no listings",
            )));
        }
        let (msk, _) = forecast.split(&self.cfg.schema);
        let (index, _) = self.forecast_containers(&msk, false).await?;
        let fkv = self.forecast_kv_oid(&msk);
        let keys = self.client.kv_list_keys(&index, fkv).await?;
        Ok(keys
            .into_iter()
            .filter(|k| k != b"__store_container__")
            .map(|k| String::from_utf8_lossy(&k).into_owned())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daosim_objstore::api::EmbeddedClient;
    use daosim_objstore::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    fn key(step: u32) -> FieldKey {
        FieldKey::from_pairs([
            ("class", "od"),
            ("date", "20201224"),
            ("time", "0000"),
            ("expver", "0001"),
            ("param", "t"),
            ("levelist", "500"),
            ("step", &step.to_string()),
        ])
    }

    fn store(mode: FieldIoMode) -> FieldStore<EmbeddedClient> {
        let (_s, pool) = DaosStore::with_single_pool(24);
        let client = EmbeddedClient::new(pool);
        block_on(FieldStore::connect(
            client,
            FieldIoConfig::with_mode(mode),
            1,
        ))
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip_all_modes() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            let data = Bytes::from(vec![0x5a; 1024 * 1024]);
            block_on(fs.write_field(&key(24), data.clone())).unwrap();
            let back = block_on(fs.read_field(&key(24))).unwrap();
            assert_eq!(back, data, "mode {mode}");
        }
    }

    #[test]
    fn missing_field_fails_per_algorithm_2() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            match block_on(fs.read_field(&key(24))) {
                Err(FieldIoError::FieldNotFound(_)) => {}
                other => panic!("mode {mode}: expected FieldNotFound, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_field_in_existing_forecast_fails() {
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        match block_on(fs.read_field(&key(48))) {
            Err(FieldIoError::FieldNotFound(_)) => {}
            other => panic!("expected FieldNotFound, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_returns_latest_and_keeps_old_array() {
        for mode in FieldIoMode::all() {
            let fs = store(mode);
            block_on(fs.write_field(&key(24), Bytes::from_static(b"version-1"))).unwrap();
            block_on(fs.write_field(&key(24), Bytes::from_static(b"version-2"))).unwrap();
            let back = block_on(fs.read_field(&key(24))).unwrap();
            assert_eq!(back.as_ref(), b"version-2", "mode {mode}");
        }
        // In indexed modes the old array is de-referenced, not deleted:
        // the store container keeps both objects.
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"a"))).unwrap();
        block_on(fs.write_field(&key(24), Bytes::from_static(b"b"))).unwrap();
        let pool = fs.client().pool().clone();
        let store_cont = pool
            .cont_open(Uuid::from_name(
                format!(
                    "cont-store:{}",
                    key(24).split(&KeySchema::ecmwf()).0.canonical()
                )
                .as_bytes(),
            ))
            .unwrap();
        assert_eq!(store_cont.object_count(), 2);
    }

    #[test]
    fn full_mode_uses_separate_containers() {
        let fs = store(FieldIoMode::Full);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        // main + index + store containers.
        assert_eq!(pool.cont_count(), 3);
    }

    #[test]
    fn no_containers_mode_stays_in_main() {
        let fs = store(FieldIoMode::NoContainers);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        assert_eq!(pool.cont_count(), 1);
    }

    #[test]
    fn no_index_mode_creates_no_kvs() {
        let fs = store(FieldIoMode::NoIndex);
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        let pool = fs.client().pool().clone();
        let main = pool.cont_open(main_container_uuid()).unwrap();
        // Exactly one object: the md5-addressed array.
        assert_eq!(main.object_count(), 1);
    }

    #[test]
    fn distinct_forecasts_get_distinct_containers() {
        let fs = store(FieldIoMode::Full);
        let mut k2 = key(24);
        k2.set("date", "20201225");
        block_on(fs.write_field(&key(24), Bytes::from_static(b"x"))).unwrap();
        block_on(fs.write_field(&k2, Bytes::from_static(b"y"))).unwrap();
        assert_eq!(fs.client().pool().cont_count(), 5);
        assert_eq!(block_on(fs.read_field(&k2)).unwrap().as_ref(), b"y");
    }

    #[test]
    fn list_fields_returns_lsk_entries() {
        let fs = store(FieldIoMode::Full);
        for step in [0u32, 24, 48] {
            block_on(fs.write_field(&key(step), Bytes::from_static(b"x"))).unwrap();
        }
        let mut listed = block_on(fs.list_fields(&key(0))).unwrap();
        listed.sort();
        assert_eq!(
            listed,
            vec![
                "levelist=500,param=t,step=0",
                "levelist=500,param=t,step=24",
                "levelist=500,param=t,step=48"
            ]
        );
    }

    #[test]
    fn purge_reclaims_only_dereferenced_arrays() {
        let fs = store(FieldIoMode::Full);
        // Three fields; re-write one of them twice -> 2 dead arrays.
        for step in [0u32, 24, 48] {
            block_on(fs.write_field(&key(step), Bytes::from_static(b"v1"))).unwrap();
        }
        block_on(fs.write_field(&key(24), Bytes::from_static(b"v2"))).unwrap();
        block_on(fs.write_field(&key(24), Bytes::from_static(b"v3"))).unwrap();
        let pool = fs.client().pool().clone();
        let store_cont = pool
            .cont_open(Uuid::from_name(
                format!(
                    "cont-store:{}",
                    key(24).split(&KeySchema::ecmwf()).0.canonical()
                )
                .as_bytes(),
            ))
            .unwrap();
        assert_eq!(store_cont.object_count(), 5);
        let purged = block_on(fs.purge_dereferenced(&key(0))).unwrap();
        assert_eq!(purged, 2);
        assert_eq!(store_cont.object_count(), 3);
        // Live data is untouched.
        assert_eq!(block_on(fs.read_field(&key(24))).unwrap().as_ref(), b"v3");
        assert_eq!(block_on(fs.read_field(&key(0))).unwrap().as_ref(), b"v1");
        // Purge is idempotent.
        assert_eq!(block_on(fs.purge_dereferenced(&key(0))).unwrap(), 0);
    }

    #[test]
    fn purge_is_conservative_in_shared_container_modes() {
        let fs = store(FieldIoMode::NoContainers);
        block_on(fs.write_field(&key(0), Bytes::from_static(b"a"))).unwrap();
        block_on(fs.write_field(&key(0), Bytes::from_static(b"b"))).unwrap();
        // Shared main container: nothing is reclaimed (cross-forecast
        // liveness cannot be decided locally).
        assert_eq!(block_on(fs.purge_dereferenced(&key(0))).unwrap(), 0);
        assert_eq!(block_on(fs.read_field(&key(0))).unwrap().as_ref(), b"b");
        // no-index mode reclaims nothing either, by construction.
        let ni = store(FieldIoMode::NoIndex);
        block_on(ni.write_field(&key(0), Bytes::from_static(b"x"))).unwrap();
        assert_eq!(block_on(ni.purge_dereferenced(&key(0))).unwrap(), 0);
    }

    #[test]
    fn wipe_forecast_removes_fields_and_listing() {
        for mode in [FieldIoMode::Full, FieldIoMode::NoContainers] {
            let fs = store(mode);
            for step in [0u32, 24, 48] {
                block_on(fs.write_field(&key(step), Bytes::from_static(b"x"))).unwrap();
            }
            let removed = block_on(fs.wipe_forecast(&key(0))).unwrap();
            assert_eq!(removed, 3, "mode {mode}");
            match block_on(fs.read_field(&key(24))) {
                Err(FieldIoError::FieldNotFound(_)) => {}
                other => panic!("mode {mode}: expected FieldNotFound, got {other:?}"),
            }
            assert!(block_on(fs.list_fields(&key(0))).unwrap().is_empty());
            // The forecast can be repopulated afterwards.
            block_on(fs.write_field(&key(6), Bytes::from_static(b"fresh"))).unwrap();
            assert_eq!(block_on(fs.read_field(&key(6))).unwrap().as_ref(), b"fresh");
        }
    }

    #[test]
    fn wipe_is_rejected_in_no_index_mode() {
        let fs = store(FieldIoMode::NoIndex);
        assert!(block_on(fs.wipe_forecast(&key(0))).is_err());
    }

    #[test]
    fn index_entry_codec_roundtrip() {
        let e = IndexEntry {
            store_cont: Uuid::from_name(b"c"),
            oid: Oid::generate(3, 77, ObjectClass::S2),
            len: 5 * 1024 * 1024,
        };
        assert_eq!(IndexEntry::decode(&e.encode()), Some(e));
        assert_eq!(IndexEntry::decode(b"short"), None);
    }

    #[test]
    fn concurrent_processes_share_forecast_containers() {
        // Two processes (two FieldStores over the same pool) writing the
        // same forecast agree on container identity via md5 naming.
        let (_s, pool) = DaosStore::with_single_pool(24);
        let fs1 = block_on(FieldStore::connect(
            EmbeddedClient::new(pool.clone()),
            FieldIoConfig::with_mode(FieldIoMode::Full),
            1,
        ))
        .unwrap();
        let fs2 = block_on(FieldStore::connect(
            EmbeddedClient::new(pool.clone()),
            FieldIoConfig::with_mode(FieldIoMode::Full),
            2,
        ))
        .unwrap();
        let mut ka = key(0);
        ka.set("param", "u");
        let mut kb = key(0);
        kb.set("param", "v");
        block_on(fs1.write_field(&ka, Bytes::from_static(b"from-1"))).unwrap();
        block_on(fs2.write_field(&kb, Bytes::from_static(b"from-2"))).unwrap();
        // Still only 3 containers; each store reads the other's field.
        assert_eq!(pool.cont_count(), 3);
        assert_eq!(block_on(fs1.read_field(&kb)).unwrap().as_ref(), b"from-2");
        assert_eq!(block_on(fs2.read_field(&ka)).unwrap().as_ref(), b"from-1");
    }
}
