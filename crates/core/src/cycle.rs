//! The operational NWP production cycle: deadline-carrying model
//! writers racing a much larger product-generation reader fleet over
//! one pool.
//!
//! This reproduces the contention scenario of "Reducing the Impact of
//! I/O Contention in NWP Workflows at Scale Using DAOS" (arXiv
//! 2404.03107): every `step_interval` each writer must stream its
//! step's fields before the next step begins (the deadline), while
//! readers wake at each step boundary and fetch fields of the previous
//! step. The central lever is the **index layout**:
//!
//! * [`IndexLayout::Shared`] — the writer id lives only in the
//!   least-significant key part, so the whole fleet indexes into *one*
//!   forecast KV whose update lock serializes every index insert (the
//!   paper's contention case);
//! * [`IndexLayout::PerProcess`] — the writer id is in the
//!   most-significant part (`number`), giving each writer its own
//!   forecast KV and spreading index updates across the pool.
//!
//! Both layouts write byte-identical field contents for the same seed;
//! only the timing/QoS metrics may differ (pinned by a proptest below).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use daosim_cluster::{
    spawn_aggregation, AggregationConfig, ClusterSpec, Deployment, FaultPlan, QosClass, SimClient,
};
use daosim_kernel::rng::splitmix64;
use daosim_kernel::{AdmissionPolicy, CounterHandle, MetricsRegistry, Sim, SimDuration};

use crate::fieldio::{FieldIoConfig, FieldStore};
use crate::key::FieldKey;
use crate::metrics::{latency_stats, EventKind, LatencyStats, Recorder};
use crate::trace::ResilienceCounters;
use crate::workload::payload;

/// How writer processes map onto the forecast-KV index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexLayout {
    /// One forecast KV for the whole fleet: the writer id is demoted to
    /// a least-significant keyword, so every index insert serializes on
    /// the shared KV's update lock.
    Shared,
    /// One forecast KV per writer: the writer id rides the
    /// most-significant `number` keyword, so each writer owns its index.
    PerProcess,
}

impl IndexLayout {
    pub fn name(self) -> &'static str {
        match self {
            IndexLayout::Shared => "shared-index",
            IndexLayout::PerProcess => "index-per-process",
        }
    }

    pub fn all() -> [IndexLayout; 2] {
        [IndexLayout::Shared, IndexLayout::PerProcess]
    }
}

/// One operational cycle's shape.
#[derive(Clone, Copy, Debug)]
pub struct CycleConfig {
    /// Time-critical model-output writers.
    pub writers: u32,
    /// Product-generation readers (typically ≫ writers).
    pub readers: u32,
    /// Forecast steps; each step's fields are due before the next.
    pub steps: u32,
    pub fields_per_step: u32,
    pub field_bytes: u64,
    /// Wall-clock between steps — also each step's deadline budget.
    pub step_interval: SimDuration,
    pub layout: IndexLayout,
    /// Writer pipeline window (W of `pipelined_writer`).
    pub write_window: u32,
    /// Reader pipeline window for `read_fields_pipelined`.
    pub read_window: u32,
    /// Fields each reader fetches per step boundary.
    pub reads_per_step: u32,
    /// Service-queue admission policy the deployment enforces for this
    /// cycle (FIFO, or writer-priority QoS barging).
    pub admission: AdmissionPolicy,
    /// Background SCM→NVMe aggregation service, if the deployment's
    /// media is tiered. `None` leaves migration off even on tiered
    /// media (the capacity tier only fills by write-buffer spill).
    pub aggregation: Option<AggregationConfig>,
    pub seed: u64,
}

/// A malformed [`CycleConfig`], reported as a typed error instead of a
/// runtime panic deep inside the cycle (e.g. the `h % writers` reader
/// fan-out dividing by zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleConfigError {
    /// The named field must be at least one.
    Zero(&'static str),
}

impl std::fmt::Display for CycleConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CycleConfigError::Zero(field) => {
                write!(f, "cycle config: `{field}` must be at least 1")
            }
        }
    }
}

impl std::error::Error for CycleConfigError {}

impl CycleConfig {
    /// A small but genuinely contended cycle: more readers than
    /// writers, several fields per step.
    pub fn small(layout: IndexLayout) -> Self {
        CycleConfig {
            writers: 4,
            readers: 8,
            steps: 2,
            fields_per_step: 3,
            field_bytes: 256 * 1024,
            step_interval: SimDuration::from_millis(40),
            layout,
            write_window: 4,
            read_window: 4,
            reads_per_step: 3,
            admission: AdmissionPolicy::Fifo,
            aggregation: None,
            seed: 7,
        }
    }

    /// Starts a validating builder at the [`CycleConfig::small`] shape
    /// under `layout`. Unlike mutating the public fields directly,
    /// [`CycleConfigBuilder::build`] runs [`CycleConfig::validate`], so
    /// a zero shape is a typed error at construction instead of a
    /// divide-by-zero (or a forever-stalled pipeline window) deep inside
    /// the cycle.
    pub fn builder(layout: IndexLayout) -> CycleConfigBuilder {
        CycleConfigBuilder {
            cfg: CycleConfig::small(layout),
        }
    }

    /// Checks the shape invariants every cycle run relies on: a zero in
    /// any of these fields would divide by zero (`reader_pick`), stall a
    /// pipeline window forever, or make the deadline ledger vacuous.
    pub fn validate(&self) -> Result<(), CycleConfigError> {
        for (name, v) in [
            ("writers", self.writers as u64),
            ("readers", self.readers as u64),
            ("steps", self.steps as u64),
            ("fields_per_step", self.fields_per_step as u64),
            ("field_bytes", self.field_bytes),
            ("write_window", self.write_window as u64),
            ("read_window", self.read_window as u64),
            ("step_interval", self.step_interval.as_nanos()),
        ] {
            if v == 0 {
                return Err(CycleConfigError::Zero(name));
            }
        }
        Ok(())
    }
}

/// Validating builder for [`CycleConfig`], in the same style as
/// `FieldIoConfig::builder()`: starts at the `small` preset, one setter
/// per knob, and `build()` returns `Result` so the validate step can't
/// be skipped.
#[derive(Clone, Copy, Debug)]
pub struct CycleConfigBuilder {
    cfg: CycleConfig,
}

impl CycleConfigBuilder {
    pub fn writers(mut self, n: u32) -> Self {
        self.cfg.writers = n;
        self
    }

    pub fn readers(mut self, n: u32) -> Self {
        self.cfg.readers = n;
        self
    }

    pub fn steps(mut self, n: u32) -> Self {
        self.cfg.steps = n;
        self
    }

    pub fn fields_per_step(mut self, n: u32) -> Self {
        self.cfg.fields_per_step = n;
        self
    }

    pub fn field_bytes(mut self, bytes: u64) -> Self {
        self.cfg.field_bytes = bytes;
        self
    }

    /// Wall-clock between steps — also each step's deadline budget.
    pub fn step_interval(mut self, interval: SimDuration) -> Self {
        self.cfg.step_interval = interval;
        self
    }

    pub fn layout(mut self, layout: IndexLayout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// Writer pipeline window (W of `pipelined_writer`).
    pub fn write_window(mut self, w: u32) -> Self {
        self.cfg.write_window = w;
        self
    }

    /// Reader pipeline window for `read_fields_pipelined`.
    pub fn read_window(mut self, w: u32) -> Self {
        self.cfg.read_window = w;
        self
    }

    pub fn reads_per_step(mut self, n: u32) -> Self {
        self.cfg.reads_per_step = n;
        self
    }

    /// Service-queue admission policy the deployment enforces.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.cfg.admission = policy;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enables the background SCM→NVMe aggregation service for the run
    /// (meaningful only when the spec's media is tiered).
    pub fn aggregation(mut self, cfg: Option<AggregationConfig>) -> Self {
        self.cfg.aggregation = cfg;
        self
    }

    /// Validates the shape and returns the config, or the first violated
    /// invariant as a [`CycleConfigError`].
    pub fn build(self) -> Result<CycleConfig, CycleConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Per-step deadline bookkeeping, surfaced through the metrics registry
/// (`cycle.deadlines_met` / `cycle.deadlines_missed`) so snapshots and
/// CSV exports carry the counts alongside the latency histograms.
#[derive(Clone)]
pub struct DeadlineLedger {
    met: CounterHandle,
    missed: CounterHandle,
    worst_late_ns: Rc<Cell<u64>>,
}

impl DeadlineLedger {
    pub fn new(metrics: &MetricsRegistry) -> Self {
        DeadlineLedger {
            met: metrics.counter("cycle.deadlines_met"),
            missed: metrics.counter("cycle.deadlines_missed"),
            worst_late_ns: Rc::new(Cell::new(0)),
        }
    }

    /// Records one step completion against its deadline.
    pub fn note(&self, due_ns: u64, completed_ns: u64) {
        if completed_ns <= due_ns {
            self.met.inc();
        } else {
            self.missed.inc();
            let late = completed_ns - due_ns;
            if late > self.worst_late_ns.get() {
                self.worst_late_ns.set(late);
            }
        }
    }

    /// Records a step that never completed (a field write failed).
    pub fn note_failed(&self) {
        self.missed.inc();
    }

    pub fn met(&self) -> u64 {
        self.met.get()
    }

    pub fn missed(&self) -> u64 {
        self.missed.get()
    }

    pub fn worst_late_ns(&self) -> u64 {
        self.worst_late_ns.get()
    }
}

/// The full field key of `(writer, step, field)` under `layout`. Both
/// layouts name the same logical field — they differ only in which side
/// of the msk/lsk split carries the writer id.
pub fn cycle_key(layout: IndexLayout, writer: u32, step: u32, field: u32) -> FieldKey {
    let mut key = FieldKey::from_pairs([
        ("class", "od"),
        ("stream", "oper"),
        ("expver", "0001"),
        ("date", "20290101"),
        ("time", "0000"),
    ]);
    key.set("step", step.to_string());
    match layout {
        IndexLayout::PerProcess => {
            key.set("number", writer.to_string());
            key.set("field", field.to_string());
        }
        IndexLayout::Shared => {
            key.set("number", "0");
            key.set("field", format!("w{writer}x{field}"));
        }
    }
    key
}

/// Layout-independent payload of logical field `(writer, step, field)` —
/// the byte-identical-contents guarantee hangs on this not seeing the
/// layout.
pub fn cycle_payload(cfg: &CycleConfig, writer: u32, step: u32, field: u32) -> Bytes {
    let salt =
        splitmix64(cfg.seed ^ ((writer as u64) << 42) ^ ((step as u64) << 21) ^ field as u64);
    payload(cfg.field_bytes, salt)
}

/// Everything the QoS comparison needs from one cycle run.
#[derive(Clone, Debug)]
pub struct CycleOutcome {
    pub layout: IndexLayout,
    /// Admission policy the cycle ran under (copied from the config so
    /// rows from a layout x admission sweep stay self-describing).
    pub admission: AdmissionPolicy,
    pub end_secs: f64,
    /// Writer submit→complete latencies (experiment-exact, from paired
    /// events; `None` when nothing completed).
    pub writer_lat: Option<LatencyStats>,
    /// Reader batch latencies.
    pub reader_lat: Option<LatencyStats>,
    /// Registry-side p99 of `client.writer.op_ns` (bucket upper bound,
    /// µs; 0 when the class saw no ops).
    pub writer_p99_us: f64,
    /// Registry-side p99 of `client.reader.op_ns`.
    pub reader_p99_us: f64,
    pub deadlines_met: u64,
    pub deadlines_missed: u64,
    pub worst_lateness_ms: f64,
    /// Aged (anti-starvation) grants the admission layer forced to the
    /// normal lane — nonzero only under writer-priority admission with
    /// genuine cross-class contention.
    pub aged_grants: u64,
    /// High-water mark of the pool-wide target-queue backlog.
    pub backlog_peak: u64,
    /// `(t_ns, depth)` samples of the backlog gauge over the cycle.
    pub backlog_series: Vec<(u64, u64)>,
    pub fields_written: u64,
    pub fields_read: u64,
    /// Pool-wide SCM write-buffer occupancy at cycle end (bytes).
    pub scm_used: u64,
    /// Pool-wide NVMe capacity-tier occupancy at cycle end (bytes).
    pub nvme_used: u64,
    /// Pool-wide bytes the aggregation service migrated SCM→NVMe.
    pub aggregated_bytes: u64,
    pub resilience: ResilienceCounters,
}

/// Per-(writer, step) completion state shared with the write callbacks.
struct StepState {
    remaining: Cell<u32>,
    failed: Cell<bool>,
    due_ns: u64,
}

fn fieldio_config(cfg: &CycleConfig) -> FieldIoConfig {
    FieldIoConfig::builder().window(cfg.write_window).build()
}

/// Deterministic reader fan-out: which `(writer, field)` reader `r`
/// fetches as its `i`-th read at step boundary `s`.
fn reader_pick(cfg: &CycleConfig, r: u32, s: u32, i: u32) -> (u32, u32) {
    let h = splitmix64(cfg.seed ^ 0x5EED_CAFE ^ ((r as u64) << 40) ^ ((s as u64) << 20) ^ i as u64);
    (
        (h % cfg.writers as u64) as u32,
        ((h >> 32) % cfg.fields_per_step as u64) as u32,
    )
}

fn run_cycle_inner(
    mut spec: ClusterSpec,
    cfg: &CycleConfig,
    faults: Option<&FaultPlan>,
) -> Result<(Sim, Rc<Deployment>, CycleOutcome), CycleConfigError> {
    cfg.validate()?;
    spec.admission = cfg.admission;
    let sim = Sim::new();
    let d = Deployment::new(&sim, spec);
    if let Some(plan) = faults {
        plan.apply(&d);
    }
    if let Some(agg) = cfg.aggregation {
        spawn_aggregation(&d, agg);
    }
    let procs = cfg.writers + cfg.readers;
    let ppn = procs.div_ceil(spec.client_nodes as u32);
    let interval_ns = cfg.step_interval.as_nanos();

    let ledger = DeadlineLedger::new(sim.obs().metrics());
    let wrec = Recorder::new();
    let rrec = Recorder::new();
    let failed_writes: Rc<Cell<u64>> = Rc::default();
    let failed_reads: Rc<Cell<u64>> = Rc::default();
    let fields_written: Rc<Cell<u64>> = Rc::default();
    let fields_read: Rc<Cell<u64>> = Rc::default();
    let series: Rc<RefCell<Vec<(u64, u64)>>> = Rc::default();

    // Backlog sampler: 4 samples per step across the whole cycle (one
    // interval of tail so late steps are still observed), then stops —
    // the kernel must go quiescent.
    {
        let (sim2, d2, series) = (sim.clone(), Rc::clone(&d), Rc::clone(&series));
        let bucket = SimDuration::from_nanos((interval_ns / 4).max(1));
        let samples = (cfg.steps as u64 + 1) * 4;
        sim.spawn(async move {
            for _ in 0..samples {
                sim2.sleep(bucket).await;
                series
                    .borrow_mut()
                    .push((sim2.now().as_nanos(), d2.backlog().depth()));
            }
        });
    }

    // Writer fleet: paced, windowed, deadline-accounted.
    for w in 0..cfg.writers {
        let (sim2, d2) = (sim.clone(), Rc::clone(&d));
        let (ledger, wrec) = (ledger.clone(), wrec.clone());
        let (failed_writes, fields_written) =
            (Rc::clone(&failed_writes), Rc::clone(&fields_written));
        let cfg = *cfg;
        sim.spawn(async move {
            let client =
                SimClient::for_process(&d2, (w / ppn) as u16, w % ppn).with_qos(QosClass::Writer);
            let fs = match FieldStore::connect(client, fieldio_config(&cfg), w + 1).await {
                Ok(fs) => fs,
                Err(_) => {
                    // The whole fleet member is lost: every step missed.
                    for _ in 0..cfg.steps {
                        ledger.note_failed();
                    }
                    failed_writes
                        .set(failed_writes.get() + (cfg.steps * cfg.fields_per_step) as u64);
                    return;
                }
            };
            let mut pw = fs.pipelined_writer(cfg.write_window);
            for s in 0..cfg.steps {
                let step_start = interval_ns * s as u64;
                let now = sim2.now().as_nanos();
                if step_start > now {
                    sim2.sleep(SimDuration::from_nanos(step_start - now)).await;
                }
                let state = Rc::new(StepState {
                    remaining: Cell::new(cfg.fields_per_step),
                    failed: Cell::new(false),
                    due_ns: interval_ns * (s as u64 + 1),
                });
                for f in 0..cfg.fields_per_step {
                    let key = cycle_key(cfg.layout, w, s, f);
                    let data = cycle_payload(&cfg, w, s, f);
                    let iteration = s * cfg.fields_per_step + f;
                    wrec.record(0, w, iteration, EventKind::IoStart, sim2.now(), 0);
                    let (sim3, state, ledger) = (sim2.clone(), Rc::clone(&state), ledger.clone());
                    let (wrec, failed_writes, fields_written) = (
                        wrec.clone(),
                        Rc::clone(&failed_writes),
                        Rc::clone(&fields_written),
                    );
                    let bytes = cfg.field_bytes;
                    let _ = pw
                        .submit_with(&key, data, move |res| {
                            match res {
                                Ok(()) => {
                                    fields_written.set(fields_written.get() + 1);
                                    wrec.record(
                                        0,
                                        w,
                                        iteration,
                                        EventKind::IoEnd,
                                        sim3.now(),
                                        bytes,
                                    );
                                }
                                Err(_) => {
                                    failed_writes.set(failed_writes.get() + 1);
                                    state.failed.set(true);
                                }
                            }
                            let rem = state.remaining.get() - 1;
                            state.remaining.set(rem);
                            if rem == 0 {
                                if state.failed.get() {
                                    ledger.note_failed();
                                } else {
                                    ledger.note(state.due_ns, sim3.now().as_nanos());
                                }
                            }
                        })
                        .await;
                }
            }
            let _ = pw.flush().await;
        });
    }

    // Reader fleet: wakes at each step boundary and fetches fields of
    // the step that just fell due. Fields a late writer has not indexed
    // yet surface as failed reads — the product-generation stall the
    // paper measures.
    for r in 0..cfg.readers {
        let p = cfg.writers + r;
        let (sim2, d2) = (sim.clone(), Rc::clone(&d));
        let rrec = rrec.clone();
        let (failed_reads, fields_read) = (Rc::clone(&failed_reads), Rc::clone(&fields_read));
        let cfg = *cfg;
        sim.spawn(async move {
            let client =
                SimClient::for_process(&d2, (p / ppn) as u16, p % ppn).with_qos(QosClass::Reader);
            let Ok(fs) = FieldStore::connect(client, fieldio_config(&cfg), p + 1).await else {
                failed_reads.set(failed_reads.get() + (cfg.steps * cfg.reads_per_step) as u64);
                return;
            };
            for s in 1..=cfg.steps {
                let at = interval_ns * s as u64;
                let now = sim2.now().as_nanos();
                if at > now {
                    sim2.sleep(SimDuration::from_nanos(at - now)).await;
                }
                let keys: Vec<FieldKey> = (0..cfg.reads_per_step)
                    .map(|i| {
                        let (w, f) = reader_pick(&cfg, r, s, i);
                        cycle_key(cfg.layout, w, s - 1, f)
                    })
                    .collect();
                let base = (s - 1) * cfg.reads_per_step;
                for i in 0..cfg.reads_per_step {
                    rrec.record(1, r, base + i, EventKind::IoStart, sim2.now(), 0);
                }
                let results = fs.read_fields_pipelined(&keys, cfg.read_window).await;
                for (i, res) in results.iter().enumerate() {
                    match res {
                        Ok(data) => {
                            fields_read.set(fields_read.get() + 1);
                            rrec.record(
                                1,
                                r,
                                base + i as u32,
                                EventKind::IoEnd,
                                sim2.now(),
                                data.len() as u64,
                            );
                        }
                        Err(_) => failed_reads.set(failed_reads.get() + 1),
                    }
                }
            }
        });
    }

    let end = sim.run().expect_quiescent();
    d.fold_metrics();
    let snap = sim.obs().metrics().snapshot();
    let class_p99 = |name: &str| {
        snap.histogram(name)
            .and_then(|h| h.quantile(0.99))
            .map(|ns| ns as f64 / 1_000.0)
            .unwrap_or(0.0)
    };
    let rr = d.resilience().report();
    let (mut scm_used, mut nvme_used, mut aggregated_bytes) = (0u64, 0u64, 0u64);
    for t in 0..d.spec.pool_targets() {
        let m = &d.target(t).media;
        scm_used += m.scm_used();
        nvme_used += m.nvme_used();
        aggregated_bytes += m.aggregated_bytes();
    }
    let outcome = CycleOutcome {
        layout: cfg.layout,
        admission: cfg.admission,
        end_secs: end.as_secs_f64(),
        writer_lat: latency_stats(&wrec.take()),
        reader_lat: latency_stats(&rrec.take()),
        writer_p99_us: class_p99("client.writer.op_ns"),
        reader_p99_us: class_p99("client.reader.op_ns"),
        deadlines_met: ledger.met(),
        deadlines_missed: ledger.missed(),
        worst_lateness_ms: ledger.worst_late_ns() as f64 / 1e6,
        aged_grants: d.aged_grants(),
        backlog_peak: d.backlog().peak(),
        backlog_series: series.take(),
        fields_written: fields_written.get(),
        fields_read: fields_read.get(),
        scm_used,
        nvme_used,
        aggregated_bytes,
        resilience: ResilienceCounters {
            retries: rr.retries,
            timeouts: rr.timeouts,
            failovers: rr.failovers,
            gave_up: rr.gave_up,
            faults_injected: rr.faults_injected,
            failed_writes: failed_writes.get(),
            failed_reads: failed_reads.get(),
        },
    };
    Ok((sim, d, outcome))
}

/// Runs one full production cycle and returns its QoS outcome.
/// Seed-deterministic: identical `(spec, cfg, faults)` give identical
/// outcomes. Fails fast on a malformed config instead of panicking
/// mid-cycle.
pub fn run_nwp_cycle(
    spec: ClusterSpec,
    cfg: &CycleConfig,
    faults: Option<&FaultPlan>,
) -> Result<CycleOutcome, CycleConfigError> {
    run_cycle_inner(spec, cfg, faults).map(|(_, _, outcome)| outcome)
}

/// Runs the cycle, then reads every logical field back through a fresh
/// client and returns the contents in `(writer, step, field)` order —
/// the layout-equivalence witness.
pub fn cycle_contents(
    spec: ClusterSpec,
    cfg: &CycleConfig,
) -> Result<Vec<Vec<u8>>, CycleConfigError> {
    let (sim, d, _) = run_cycle_inner(spec, cfg, None)?;
    let out: Rc<RefCell<Vec<Vec<u8>>>> = Rc::default();
    {
        let out = Rc::clone(&out);
        let cfg = *cfg;
        sim.block_on(async move {
            let client = SimClient::for_process(&d, 0, 0);
            let fs =
                FieldStore::connect(client, fieldio_config(&cfg), cfg.writers + cfg.readers + 1)
                    .await
                    .expect("read-back connect");
            for w in 0..cfg.writers {
                for s in 0..cfg.steps {
                    for f in 0..cfg.fields_per_step {
                        let key = cycle_key(cfg.layout, w, s, f);
                        let data = fs.read_field(&key).await.expect("read back");
                        out.borrow_mut().push(data.to_vec());
                    }
                }
            }
        });
    }
    Ok(Rc::try_unwrap(out).expect("sole owner").into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::tcp(1, 1)
    }

    #[test]
    fn cycle_accounts_every_step_and_field() {
        let cfg = CycleConfig::small(IndexLayout::PerProcess);
        let out = run_nwp_cycle(spec(), &cfg, None).unwrap();
        assert_eq!(
            out.deadlines_met + out.deadlines_missed,
            (cfg.writers * cfg.steps) as u64,
            "every (writer, step) must be adjudicated: {out:?}"
        );
        assert_eq!(
            out.fields_written,
            (cfg.writers * cfg.steps * cfg.fields_per_step) as u64,
            "no faults: every field write lands"
        );
        assert_eq!(out.resilience.failed_writes, 0);
        assert_eq!(
            out.fields_read + out.resilience.failed_reads,
            (cfg.readers * cfg.steps * cfg.reads_per_step) as u64,
            "every read resolves one way or the other"
        );
        assert!(out.writer_lat.is_some());
        assert!(out.backlog_peak > 0, "contention must register");
        assert!(!out.backlog_series.is_empty());
        assert!(out.writer_p99_us > 0.0, "writer class histogram fed");
        assert!(out.reader_p99_us > 0.0, "reader class histogram fed");
    }

    #[test]
    fn zero_shaped_configs_are_rejected_not_panicked() {
        // Each of these used to reach a panic (e.g. `h % writers` in
        // reader_pick) or a stalled pipeline; now they fail fast.
        let cases: [(&str, fn(&mut CycleConfig)); 5] = [
            ("writers", |c| c.writers = 0),
            ("readers", |c| c.readers = 0),
            ("fields_per_step", |c| c.fields_per_step = 0),
            ("steps", |c| c.steps = 0),
            ("step_interval", |c| c.step_interval = SimDuration::ZERO),
        ];
        for (field, poke) in cases {
            let mut cfg = CycleConfig::small(IndexLayout::Shared);
            poke(&mut cfg);
            let err = run_nwp_cycle(spec(), &cfg, None).unwrap_err();
            assert_eq!(err, CycleConfigError::Zero(field));
            assert!(err.to_string().contains(field), "{err}");
            assert_eq!(cycle_contents(spec(), &cfg).unwrap_err(), err);
        }
    }

    #[test]
    fn writer_priority_cycle_stays_fully_accounted() {
        // QoS barging must not lose a single op: every (writer, step) is
        // adjudicated and every read resolves — readers degrade, they
        // are never starved out of completion.
        let mut cfg = CycleConfig::small(IndexLayout::Shared);
        cfg.admission = AdmissionPolicy::writer_priority();
        let out = run_nwp_cycle(spec(), &cfg, None).unwrap();
        assert_eq!(
            out.deadlines_met + out.deadlines_missed,
            (cfg.writers * cfg.steps) as u64
        );
        assert_eq!(
            out.fields_written,
            (cfg.writers * cfg.steps * cfg.fields_per_step) as u64
        );
        assert_eq!(
            out.fields_read + out.resilience.failed_reads,
            (cfg.readers * cfg.steps * cfg.reads_per_step) as u64
        );
    }

    #[test]
    fn cycle_is_seed_deterministic() {
        let cfg = CycleConfig::small(IndexLayout::Shared);
        let a = run_nwp_cycle(spec(), &cfg, None).unwrap();
        let b = run_nwp_cycle(spec(), &cfg, None).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn fault_campaigns_do_not_panic_the_cycle() {
        // Contention + failure together: seeded random campaigns against
        // the full cycle stack under the operational retry policy. Ops
        // may fail; nothing may panic, and accounting must stay closed.
        for seed in 0..3u64 {
            let mut spec = spec();
            spec.retry = daosim_cluster::RetryPolicy::builder().operational().build();
            let cfg = CycleConfig::small(IndexLayout::Shared);
            let plan = FaultPlan::random_campaign(seed, spec.engines(), SimDuration::from_secs(1));
            let out = run_nwp_cycle(spec, &cfg, Some(&plan)).unwrap();
            assert_eq!(
                out.deadlines_met + out.deadlines_missed,
                (cfg.writers * cfg.steps) as u64
            );
            assert_eq!(
                out.fields_read + out.resilience.failed_reads,
                (cfg.readers * cfg.steps * cfg.reads_per_step) as u64
            );
        }
    }

    #[test]
    fn shared_index_serializes_harder_than_per_process() {
        // The paper's claim, in miniature: one shared forecast KV makes
        // the writer fleet serialize on its index lock, so the cycle
        // cannot finish faster than the split-index layout.
        let shared = run_nwp_cycle(spec(), &CycleConfig::small(IndexLayout::Shared), None).unwrap();
        let split =
            run_nwp_cycle(spec(), &CycleConfig::small(IndexLayout::PerProcess), None).unwrap();
        assert!(
            shared.end_secs >= split.end_secs,
            "shared={} split={}",
            shared.end_secs,
            split.end_secs
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Satellite: shared-index and index-per-process converge to
        /// byte-identical field contents for the same seeded cycle.
        #[test]
        fn layouts_converge_to_identical_contents(
            writers in 1u32..3,
            steps in 1u32..3,
            fields in 1u32..3,
            bytes in 64u64..512,
            seed in 0u64..1000,
        ) {
            let mut cfg = CycleConfig::small(IndexLayout::Shared);
            cfg.writers = writers;
            cfg.readers = 2;
            cfg.steps = steps;
            cfg.fields_per_step = fields;
            cfg.field_bytes = bytes;
            cfg.reads_per_step = 1;
            cfg.seed = seed;
            let shared = cycle_contents(spec(), &cfg).unwrap();
            cfg.layout = IndexLayout::PerProcess;
            let split = cycle_contents(spec(), &cfg).unwrap();
            prop_assert_eq!(shared, split);
        }
    }
}
