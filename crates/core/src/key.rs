//! Weather-field keys and the most/least-significant split.
//!
//! A field is identified by a set of key-value pairs (paper Fig. 1), e.g.
//! `class=od, date=20201224, time=0000, param=t, level=500, step=24`.
//! The field I/O scheme splits a key into its *most-significant* part —
//! the pairs identifying a model run or *forecast* (indexed by the main
//! Key-Value) — and the *least-significant* part — the pairs identifying
//! one field within that forecast (indexed by the forecast Key-Value).

use std::collections::BTreeMap;
use std::fmt;

/// Which key names belong to the most-significant (forecast-identifying)
/// part. Mirrors the FDB5 schema's first rule level.
#[derive(Clone, Debug)]
pub struct KeySchema {
    msk_names: Vec<String>,
}

impl KeySchema {
    pub fn new<I, S>(msk_names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        KeySchema {
            msk_names: msk_names.into_iter().map(Into::into).collect(),
        }
    }

    /// The ECMWF-style default: class/stream/expver/date/time/number
    /// identify a forecast; everything else identifies a field within it.
    pub fn ecmwf() -> Self {
        KeySchema::new(["class", "stream", "expver", "date", "time", "number"])
    }

    pub fn is_msk(&self, name: &str) -> bool {
        self.msk_names.iter().any(|n| n == name)
    }
}

impl Default for KeySchema {
    fn default() -> Self {
        Self::ecmwf()
    }
}

/// One part of a key (either split half), canonically ordered.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct KeyPart {
    entries: BTreeMap<String, String>,
}

impl KeyPart {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Canonical text form `k1=v1,k2=v2` in key order — the byte string
    /// hashed for container UUIDs and used as the Key-Value key.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(String::as_str)
    }
}

/// A complete field key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FieldKey {
    entries: BTreeMap<String, String>,
}

impl FieldKey {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a key from `(name, value)` pairs. Later duplicates win,
    /// matching set semantics.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        FieldKey {
            entries: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }

    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.entries.insert(name.into(), value.into());
        self
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits into `(most-significant, least-significant)` per `schema`.
    pub fn split(&self, schema: &KeySchema) -> (KeyPart, KeyPart) {
        let mut msk = KeyPart::default();
        let mut lsk = KeyPart::default();
        for (k, v) in &self.entries {
            if schema.is_msk(k) {
                msk.entries.insert(k.clone(), v.clone());
            } else {
                lsk.entries.insert(k.clone(), v.clone());
            }
        }
        (msk, lsk)
    }

    /// Parses the canonical text form `k1=v1,k2=v2`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut key = FieldKey::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in {part:?}"))?;
            if k.trim().is_empty() || v.trim().is_empty() {
                return Err(format!("empty name or value in {part:?}"));
            }
            key.set(k.trim(), v.trim());
        }
        if key.is_empty() {
            return Err("empty key".to_string());
        }
        Ok(key)
    }

    /// Canonical text of the full key.
    pub fn canonical(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

impl fmt::Display for FieldKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl fmt::Display for KeyPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FieldKey {
        FieldKey::from_pairs([
            ("class", "od"),
            ("date", "20201224"),
            ("time", "0000"),
            ("expver", "0001"),
            ("param", "t"),
            ("levelist", "500"),
            ("step", "24"),
        ])
    }

    #[test]
    fn canonical_is_sorted_and_stable() {
        let k = sample();
        assert_eq!(
            k.canonical(),
            "class=od,date=20201224,expver=0001,levelist=500,param=t,step=24,time=0000"
        );
        // Insertion order must not matter.
        let mut k2 = FieldKey::new();
        k2.set("step", "24")
            .set("class", "od")
            .set("date", "20201224")
            .set("expver", "0001")
            .set("levelist", "500")
            .set("param", "t")
            .set("time", "0000");
        assert_eq!(k, k2);
        assert_eq!(k.canonical(), k2.canonical());
    }

    #[test]
    fn split_follows_schema() {
        let (msk, lsk) = sample().split(&KeySchema::ecmwf());
        assert_eq!(
            msk.canonical(),
            "class=od,date=20201224,expver=0001,time=0000"
        );
        assert_eq!(lsk.canonical(), "levelist=500,param=t,step=24");
        assert_eq!(msk.get("class"), Some("od"));
        assert_eq!(lsk.get("class"), None);
    }

    #[test]
    fn same_forecast_same_msk() {
        let a = sample();
        let mut b = sample();
        b.set("step", "48");
        let s = KeySchema::ecmwf();
        assert_eq!(a.split(&s).0, b.split(&s).0);
        assert_ne!(a.split(&s).1, b.split(&s).1);
    }

    #[test]
    fn custom_schema() {
        let s = KeySchema::new(["a"]);
        let k = FieldKey::from_pairs([("a", "1"), ("b", "2")]);
        let (msk, lsk) = k.split(&s);
        assert_eq!(msk.canonical(), "a=1");
        assert_eq!(lsk.canonical(), "b=2");
    }

    #[test]
    fn duplicate_set_overwrites() {
        let mut k = FieldKey::new();
        k.set("p", "old").set("p", "new");
        assert_eq!(k.get("p"), Some("new"));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn empty_parts_allowed() {
        let k = FieldKey::from_pairs([("param", "t")]);
        let (msk, lsk) = k.split(&KeySchema::ecmwf());
        assert!(msk.is_empty());
        assert!(!lsk.is_empty());
        assert_eq!(msk.canonical(), "");
    }

    #[test]
    fn parse_roundtrips_canonical() {
        let k = sample();
        let parsed = FieldKey::parse(&k.canonical()).unwrap();
        assert_eq!(parsed, k);
        // Whitespace tolerated, empties rejected.
        assert!(FieldKey::parse(" class = od , step = 24 ").is_ok());
        assert!(FieldKey::parse("").is_err());
        assert!(FieldKey::parse("class").is_err());
        assert!(FieldKey::parse("class=").is_err());
    }

    #[test]
    fn display_matches_canonical() {
        let k = sample();
        assert_eq!(format!("{k}"), k.canonical());
    }
}
