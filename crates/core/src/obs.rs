//! Trace export and validation for the simulator's observability layer.
//!
//! The substrate — span recording, the metrics registry, the guard types
//! — lives in [`daosim_kernel::Obs`] so every layer of the stack can
//! instrument itself. This module is the user-facing half: it turns the
//! recorded [`SpanEvent`] stream into artifacts (Chrome trace-event JSON
//! for Perfetto / `chrome://tracing`, flat CSV for scripting), and it
//! checks the structural invariants a well-formed trace must satisfy
//! (every end matches a begin, parents close after their children).
//!
//! Everything here is deterministic: the event stream is keyed on sim
//! time and span ids are handed out in begin order, so two runs with the
//! same seed export byte-identical JSON and CSV.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

pub use daosim_kernel::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Obs, SpanEvent,
    SpanGuard, SpanId,
};

/// One reassembled span: a matched `Begin`/`End` pair (or an unclosed
/// `Begin`, with `end_ns` = `None`).
#[derive(Clone, Debug)]
struct SpanRec {
    id: SpanId,
    parent: Option<SpanId>,
    task: Option<u64>,
    category: &'static str,
    name: String,
    detached: bool,
    start_ns: u64,
    end_ns: Option<u64>,
}

/// A point event: `(t_ns, task, category, name)`.
type InstantRec = (u64, Option<u64>, &'static str, String);

fn assemble(events: &[SpanEvent]) -> (Vec<SpanRec>, Vec<InstantRec>) {
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut index: HashMap<SpanId, usize> = HashMap::new();
    let mut instants = Vec::new();
    for ev in events {
        match ev {
            SpanEvent::Begin {
                id,
                parent,
                task,
                t_ns,
                category,
                name,
                detached,
            } => {
                index.insert(*id, spans.len());
                spans.push(SpanRec {
                    id: *id,
                    parent: *parent,
                    task: *task,
                    category,
                    name: name.clone(),
                    detached: *detached,
                    start_ns: *t_ns,
                    end_ns: None,
                });
            }
            SpanEvent::End { id, t_ns } => {
                if let Some(&i) = index.get(id) {
                    spans[i].end_ns = Some(*t_ns);
                }
            }
            SpanEvent::Instant {
                t_ns,
                task,
                category,
                name,
            } => instants.push((*t_ns, *task, *category, name.clone())),
        }
    }
    (spans, instants)
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → the trace-event `ts` field (microseconds, fractional
/// part kept so distinct sim times never collapse into one tick).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Lane (`tid`) assignment: the setup/event-handler context gets lane 0,
/// executor tasks get lanes in order of first appearance — stable across
/// reruns because the event stream itself is deterministic.
fn lane_map(spans: &[SpanRec], instants: &[InstantRec]) -> Vec<u64> {
    let mut lanes: Vec<u64> = Vec::new();
    let seen = |lanes: &mut Vec<u64>, task: Option<u64>| {
        if let Some(t) = task {
            if !lanes.contains(&t) {
                lanes.push(t);
            }
        }
    };
    for s in spans {
        seen(&mut lanes, s.task);
    }
    for (_, task, _, _) in instants {
        seen(&mut lanes, *task);
    }
    lanes
}

fn tid_of(lanes: &[u64], task: Option<u64>) -> u64 {
    match task {
        None => 0,
        Some(t) => 1 + lanes.iter().position(|&x| x == t).expect("lane") as u64,
    }
}

/// Renders an event stream as Chrome trace-event JSON (the format
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load).
///
/// * stacked spans become complete (`"ph":"X"`) events on their task's
///   lane — the viewer nests them by duration;
/// * detached (leaf) spans with non-zero duration become async
///   `"b"`/`"e"` pairs, which may overlap freely;
/// * zero-duration detached spans (executor polls) and instants become
///   zero-width events so they remain visible without faking extent;
/// * unclosed spans are clamped to the last timestamp in the stream.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let (spans, instants) = assemble(events);
    let max_ns = events
        .iter()
        .map(|e| match e {
            SpanEvent::Begin { t_ns, .. }
            | SpanEvent::End { t_ns, .. }
            | SpanEvent::Instant { t_ns, .. } => *t_ns,
        })
        .max()
        .unwrap_or(0);
    let lanes = lane_map(&spans, &instants);
    let mut rows: Vec<String> = Vec::new();
    rows.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"daosim\"}}"
            .to_string(),
    );
    rows.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"events\"}}"
            .to_string(),
    );
    for (i, t) in lanes.iter().enumerate() {
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"task {t}\"}}}}",
            i + 1
        ));
    }
    for s in &spans {
        let tid = tid_of(&lanes, s.task);
        let name = json_escape(&s.name);
        let end = s.end_ns.unwrap_or(max_ns);
        let dur = end.saturating_sub(s.start_ns);
        if s.detached && dur > 0 {
            rows.push(format!(
                "{{\"ph\":\"b\",\"pid\":1,\"tid\":{tid},\"cat\":\"{}\",\
                 \"id\":\"{}\",\"name\":\"{name}\",\"ts\":{}}}",
                s.category,
                s.id,
                ts_us(s.start_ns)
            ));
            rows.push(format!(
                "{{\"ph\":\"e\",\"pid\":1,\"tid\":{tid},\"cat\":\"{}\",\
                 \"id\":\"{}\",\"name\":\"{name}\",\"ts\":{}}}",
                s.category,
                s.id,
                ts_us(end)
            ));
        } else {
            rows.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"cat\":\"{}\",\
                 \"name\":\"{name}\",\"ts\":{},\"dur\":{}}}",
                s.category,
                ts_us(s.start_ns),
                ts_us(dur)
            ));
        }
    }
    for (t_ns, task, category, name) in &instants {
        rows.push(format!(
            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"cat\":\"{category}\",\
             \"name\":\"{}\",\"ts\":{},\"s\":\"t\"}}",
            tid_of(&lanes, *task),
            json_escape(name),
            ts_us(*t_ns)
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Renders an event stream as flat CSV, one row per span or instant, in
/// emission order: `kind,id,parent,task,category,name,start_ns,end_ns,dur_ns`.
/// Unclosed spans leave `end_ns`/`dur_ns` empty.
pub fn spans_to_csv(events: &[SpanEvent]) -> String {
    let (spans, _) = assemble(events);
    let by_id: HashMap<SpanId, &SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    let mut s = String::from("kind,id,parent,task,category,name,start_ns,end_ns,dur_ns\n");
    let opt = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
    for ev in events {
        match ev {
            SpanEvent::Begin { id, .. } => {
                let r = by_id[id];
                let (end, dur) = match r.end_ns {
                    Some(e) => (e.to_string(), e.saturating_sub(r.start_ns).to_string()),
                    None => (String::new(), String::new()),
                };
                let _ = writeln!(
                    s,
                    "span,{},{},{},{},{},{},{},{}",
                    r.id,
                    opt(r.parent),
                    opt(r.task),
                    r.category,
                    r.name,
                    r.start_ns,
                    end,
                    dur
                );
            }
            SpanEvent::End { .. } => {}
            SpanEvent::Instant {
                t_ns,
                task,
                category,
                name,
            } => {
                let _ = writeln!(
                    s,
                    "instant,,,{},{},{},{},{},0",
                    opt(*task),
                    category,
                    name,
                    t_ns,
                    t_ns
                );
            }
        }
    }
    s
}

/// Structural summary of a validated trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Matched (closed) spans.
    pub spans: usize,
    /// Spans begun but never ended (e.g. stranded by a killed run).
    pub unclosed: usize,
    pub instants: usize,
    /// Distinct span/instant categories, sorted.
    pub categories: Vec<String>,
}

/// Checks the invariants of a span stream and summarises it:
///
/// * timestamps are non-decreasing in emission order;
/// * every `End` matches exactly one earlier `Begin` (no stray or double
///   ends);
/// * a span's parent must still be open when the span begins, and a span
///   may not end while it has open children (parents close after
///   children).
///
/// Unclosed spans at the end of the stream are counted, not rejected —
/// callers that require a fully balanced trace assert `unclosed == 0`.
pub fn validate_spans(events: &[SpanEvent]) -> Result<TraceSummary, String> {
    // id -> (parent, open child count)
    let mut open: HashMap<SpanId, (Option<SpanId>, usize)> = HashMap::new();
    let mut closed: std::collections::HashSet<SpanId> = std::collections::HashSet::new();
    let mut categories: BTreeSet<String> = BTreeSet::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut last_t = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let t = match ev {
            SpanEvent::Begin { t_ns, .. }
            | SpanEvent::End { t_ns, .. }
            | SpanEvent::Instant { t_ns, .. } => *t_ns,
        };
        if t < last_t {
            return Err(format!(
                "event {i}: timestamp {t} before predecessor {last_t}"
            ));
        }
        last_t = t;
        match ev {
            SpanEvent::Begin {
                id,
                parent,
                category,
                ..
            } => {
                categories.insert(category.to_string());
                if let Some(p) = parent {
                    match open.get_mut(p) {
                        Some(slot) => slot.1 += 1,
                        None => {
                            return Err(format!(
                                "event {i}: span {id} begins under parent {p} which is not open"
                            ))
                        }
                    }
                }
                open.insert(*id, (*parent, 0));
            }
            SpanEvent::End { id, .. } => match open.remove(id) {
                Some((parent, open_children)) => {
                    if open_children > 0 {
                        return Err(format!(
                            "event {i}: span {id} ends with {open_children} open child(ren)"
                        ));
                    }
                    if let Some(p) = parent {
                        if let Some(slot) = open.get_mut(&p) {
                            slot.1 -= 1;
                        }
                    }
                    closed.insert(*id);
                    spans += 1;
                }
                None => {
                    return Err(if closed.contains(id) {
                        format!("event {i}: span {id} ended twice")
                    } else {
                        format!("event {i}: end of span {id} which never began")
                    });
                }
            },
            SpanEvent::Instant { category, .. } => {
                categories.insert(category.to_string());
                instants += 1;
            }
        }
    }
    Ok(TraceSummary {
        spans,
        unclosed: open.len(),
        instants,
        categories: categories.into_iter().collect(),
    })
}

/// Minimal recursive-descent JSON well-formedness check, used by the
/// trace smoke tests so export validation does not depend on an external
/// JSON crate.
pub fn json_is_wellformed(text: &str) -> bool {
    let b = text.as_bytes();
    let mut pos = 0usize;
    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }
    fn value(b: &[u8], pos: &mut usize, depth: usize) -> bool {
        if depth > 256 {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return true;
                }
                loop {
                    skip_ws(b, pos);
                    if !string(b, pos) {
                        return false;
                    }
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return false;
                    }
                    *pos += 1;
                    if !value(b, pos, depth + 1) {
                        return false;
                    }
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return true;
                }
                loop {
                    if !value(b, pos, depth + 1) {
                        return false;
                    }
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            _ => false,
        }
    }
    fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
        if b[*pos..].starts_with(lit) {
            *pos += lit.len();
            true
        } else {
            false
        }
    }
    fn string(b: &[u8], pos: &mut usize) -> bool {
        if b.get(*pos) != Some(&b'"') {
            return false;
        }
        *pos += 1;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return true;
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            if b.len() < *pos + 5
                                || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            *pos += 5;
                        }
                        _ => return false,
                    }
                }
                0x00..=0x1f => return false,
                _ => *pos += 1,
            }
        }
        false
    }
    fn number(b: &[u8], pos: &mut usize) -> bool {
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits_from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == digits_from {
            return false;
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return false;
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
                return false;
            }
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        true
    }
    if !value(b, &mut pos, 0) {
        return false;
    }
    skip_ws(b, &mut pos);
    pos == b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(id: u64, parent: Option<u64>, t: u64, detached: bool) -> SpanEvent {
        SpanEvent::Begin {
            id,
            parent,
            task: Some(1),
            t_ns: t,
            category: "test",
            name: format!("s{id}"),
            detached,
        }
    }

    fn end(id: u64, t: u64) -> SpanEvent {
        SpanEvent::End { id, t_ns: t }
    }

    #[test]
    fn validate_accepts_nested_spans() {
        let ev = vec![
            begin(0, None, 0, false),
            begin(1, Some(0), 5, false),
            end(1, 9),
            end(0, 10),
        ];
        let s = validate_spans(&ev).unwrap();
        assert_eq!((s.spans, s.unclosed, s.instants), (2, 0, 0));
        assert_eq!(s.categories, ["test"]);
    }

    #[test]
    fn validate_rejects_parent_closing_before_child() {
        let ev = vec![
            begin(0, None, 0, false),
            begin(1, Some(0), 5, false),
            end(0, 9),
            end(1, 10),
        ];
        let err = validate_spans(&ev).unwrap_err();
        assert!(err.contains("open child"), "{err}");
    }

    #[test]
    fn validate_rejects_stray_and_double_ends() {
        let err = validate_spans(&[end(7, 1)]).unwrap_err();
        assert!(err.contains("never began"), "{err}");
        let ev = vec![begin(0, None, 0, false), end(0, 1), end(0, 2)];
        let err = validate_spans(&ev).unwrap_err();
        assert!(err.contains("ended twice"), "{err}");
    }

    #[test]
    fn validate_rejects_time_travel() {
        let ev = vec![begin(0, None, 10, false), end(0, 5)];
        let err = validate_spans(&ev).unwrap_err();
        assert!(err.contains("before predecessor"), "{err}");
    }

    #[test]
    fn validate_counts_unclosed_spans() {
        let ev = vec![begin(0, None, 0, false), begin(1, Some(0), 1, true)];
        let s = validate_spans(&ev).unwrap();
        assert_eq!((s.spans, s.unclosed), (0, 2));
    }

    #[test]
    fn chrome_export_is_wellformed_and_balanced() {
        let ev = vec![
            begin(0, None, 0, false),
            begin(1, Some(0), 1_500, true),
            SpanEvent::Instant {
                t_ns: 2_000,
                task: None,
                category: "fault",
                name: "kill \"e0\"".into(),
            },
            end(1, 3_000),
            end(0, 4_000),
        ];
        let json = chrome_trace_json(&ev);
        assert!(json_is_wellformed(&json), "not well-formed:\n{json}");
        // The detached span with duration renders as an async pair.
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        // 1500 ns = 1.500 µs.
        assert!(json.contains("\"ts\":1.500"));
        // The quote in the instant name is escaped.
        assert!(json.contains("kill \\\"e0\\\""));
    }

    #[test]
    fn zero_duration_detached_span_renders_as_complete_event() {
        let ev = vec![begin(0, None, 10, true), end(0, 10)];
        let json = chrome_trace_json(&ev);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ph\":\"b\""));
    }

    #[test]
    fn csv_dump_rows_in_emission_order() {
        let ev = vec![
            begin(0, None, 0, false),
            begin(1, Some(0), 5, false),
            end(1, 9),
            SpanEvent::Instant {
                t_ns: 9,
                task: None,
                category: "fault",
                name: "kill e0".into(),
            },
            end(0, 10),
        ];
        let csv = spans_to_csv(&ev);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "kind,id,parent,task,category,name,start_ns,end_ns,dur_ns"
        );
        assert_eq!(lines[1], "span,0,,1,test,s0,0,10,10");
        assert_eq!(lines[2], "span,1,0,1,test,s1,5,9,4");
        assert_eq!(lines[3], "instant,,,,fault,kill e0,9,9,0");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(json_is_wellformed("{}"));
        assert!(json_is_wellformed(r#"{"a":[1,2.5,-3e2,"x\n",true,null]}"#));
        assert!(json_is_wellformed("[[],{},\"\"]"));
        assert!(!json_is_wellformed("{"));
        assert!(!json_is_wellformed("{\"a\":}"));
        assert!(!json_is_wellformed("[1,]"));
        assert!(!json_is_wellformed("\"unterminated"));
        assert!(!json_is_wellformed("{} extra"));
        assert!(!json_is_wellformed("01abc"));
    }
}
