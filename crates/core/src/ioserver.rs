//! The model-rank → I/O-server pipeline (paper §1.2).
//!
//! At ECMWF the forecast model's processes never touch storage directly:
//! fields stream over the low-latency interconnect to dedicated *I/O
//! server* nodes, which aggregate and encode them and perform the actual
//! object-store writes. This module reproduces that pipeline on the
//! simulated cluster: model ranks on one set of client nodes push fields
//! to I/O-server processes on another set, which archive them through the
//! field I/O functions — measuring both storage-side bandwidth and the
//! end-to-end (model-to-durable) field latency.

use std::rc::Rc;

use bytes::Bytes;
use serde::Serialize;

use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_kernel::sync::channel;
use daosim_kernel::{Sim, SimDuration, SimTime};

use crate::fieldio::{FieldIoConfig, FieldStore};
use crate::key::FieldKey;
use crate::metrics::{latency_stats, phase_stats, EventKind, LatencyStats, PhaseStats, Recorder};
use crate::workload::payload;

/// Configuration of an I/O-server pipeline run.
#[derive(Clone, Debug)]
pub struct IoServerConfig {
    /// Cluster shape; `client_nodes` must cover model + I/O-server nodes.
    pub cluster: ClusterSpec,
    pub fieldio: FieldIoConfig,
    /// Leading client nodes that run model ranks.
    pub model_nodes: u16,
    /// Model ranks per model node.
    pub ranks_per_node: u32,
    /// I/O-server processes per remaining client node.
    pub ioservers_per_node: u32,
    /// Fields each model rank emits per step.
    pub fields_per_rank: u32,
    /// Forecast steps.
    pub steps: u32,
    pub field_bytes: u64,
    /// Per-field encoding cost on the I/O server (GRIB encoding).
    pub encode_cost: SimDuration,
}

impl IoServerConfig {
    /// A small but representative default: 2 model nodes feeding 1
    /// I/O-server node in front of a single DAOS server node.
    pub fn small() -> Self {
        IoServerConfig {
            cluster: ClusterSpec::tcp(1, 3),
            fieldio: FieldIoConfig::default(),
            model_nodes: 2,
            ranks_per_node: 8,
            ioservers_per_node: 4,
            fields_per_rank: 12,
            steps: 2,
            field_bytes: 1024 * 1024,
            encode_cost: SimDuration::from_micros(120),
        }
    }

    pub fn io_server_nodes(&self) -> u16 {
        self.cluster.client_nodes - self.model_nodes
    }

    pub fn total_fields(&self) -> u64 {
        self.model_nodes as u64
            * self.ranks_per_node as u64
            * self.fields_per_rank as u64
            * self.steps as u64
    }
}

/// Outcome of a pipeline run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IoServerResult {
    /// Storage-side write statistics (I/O-server perspective).
    pub storage: PhaseStats,
    /// Model-to-durable latency distribution per field.
    pub end_to_end: LatencyStats,
    pub fields: u64,
    pub end_secs: f64,
}

/// A field in flight from a model rank to an I/O server.
struct InFlight {
    key: FieldKey,
    data: Bytes,
    emitted_at: SimTime,
    rank: u32,
    seq: u32,
}

/// Runs the pipeline to completion.
pub fn run_ioserver_pipeline(cfg: &IoServerConfig) -> IoServerResult {
    assert!(cfg.model_nodes >= 1 && cfg.model_nodes < cfg.cluster.client_nodes);
    assert!(cfg.ranks_per_node >= 1 && cfg.ioservers_per_node >= 1);
    let sim = Sim::new();
    let d = Deployment::new(&sim, cfg.cluster);
    let data = payload(cfg.field_bytes, 3);
    let storage_rec = Recorder::new();
    let e2e_rec = Recorder::new();

    let servers = cfg.io_server_nodes() as u32 * cfg.ioservers_per_node;
    let mut to_server = Vec::new();
    let mut from_model = Vec::new();
    for _ in 0..servers {
        let (tx, rx) = channel::<InFlight>();
        to_server.push(tx);
        from_model.push(Some(rx));
    }

    // Model ranks: generate fields, ship each over the fabric to its
    // assigned I/O server (sharded by field sequence number).
    let ranks = cfg.model_nodes as u32 * cfg.ranks_per_node;
    for rank in 0..ranks {
        let (d, cfg, data, sim2) = (Rc::clone(&d), cfg.clone(), data.clone(), sim.clone());
        let senders = to_server.clone();
        sim.spawn(async move {
            let node = (rank / cfg.ranks_per_node) as u16;
            let ep = d.client_endpoint(node, rank % cfg.ranks_per_node);
            for step in 0..cfg.steps {
                for f in 0..cfg.fields_per_rank {
                    let seq = step * cfg.fields_per_rank + f;
                    let target = ((rank + seq) % senders.len() as u32) as usize;
                    let server_node =
                        cfg.model_nodes + (target as u32 / cfg.ioservers_per_node) as u16;
                    let server_ep =
                        d.client_endpoint(server_node, target as u32 % cfg.ioservers_per_node);
                    let key = model_field_key(rank, step, f);
                    let emitted_at = sim2.now();
                    // Interconnect hop: latency + bulk flow rank -> server.
                    sim2.sleep(d.fabric.msg_latency()).await;
                    d.fabric.transfer(ep, server_ep, cfg.field_bytes).await;
                    senders[target].send(InFlight {
                        key,
                        data: data.clone(),
                        emitted_at,
                        rank,
                        seq,
                    });
                }
            }
        });
    }
    drop(to_server);

    // I/O servers: drain their queue, encode, archive. With an in-flight
    // window above 1 the archive step goes through the pipelined writer
    // (FDB-style asynchronous flush); events are then recorded from the
    // per-field completion callback, at completion time.
    let window = cfg.fieldio.inflight_window;
    for (s, rx) in from_model.iter_mut().enumerate() {
        let mut rx = rx.take().expect("receiver consumed twice");
        let (d, cfg, sim2) = (Rc::clone(&d), cfg.clone(), sim.clone());
        let (storage_rec, e2e_rec) = (storage_rec.clone(), e2e_rec.clone());
        sim.spawn(async move {
            let node = cfg.model_nodes + (s as u32 / cfg.ioservers_per_node) as u16;
            let client = SimClient::for_process(&d, node, s as u32 % cfg.ioservers_per_node);
            let fs = FieldStore::connect(client, cfg.fieldio.clone(), 50_000 + s as u32)
                .await
                .expect("ioserver connect");
            if window > 1 {
                let mut w = fs.pipelined_writer(window);
                let mut n = 0u32;
                while let Some(field) = rx.recv().await {
                    // Aggregation + GRIB encoding before the storage write.
                    sim2.sleep(cfg.encode_cost).await;
                    storage_rec.record(node, s as u32, n, EventKind::IoStart, sim2.now(), 0);
                    let (storage_rec, e2e_rec, sim3) =
                        (storage_rec.clone(), e2e_rec.clone(), sim2.clone());
                    let (rank, seq, emitted_at) = (field.rank, field.seq, field.emitted_at);
                    let (field_bytes, submit_seq, server) = (cfg.field_bytes, n, s as u32);
                    w.submit_with(&field.key, field.data.clone(), move |r| {
                        r.expect("archive failed");
                        let now = sim3.now();
                        storage_rec.record(
                            node,
                            server,
                            submit_seq,
                            EventKind::IoEnd,
                            now,
                            field_bytes,
                        );
                        e2e_rec.record(0, rank, seq, EventKind::IoStart, emitted_at, 0);
                        e2e_rec.record(0, rank, seq, EventKind::IoEnd, now, field_bytes);
                    })
                    .await
                    .expect("archive failed");
                    n += 1;
                }
                w.flush().await.expect("archive flush failed");
                return;
            }
            let mut n = 0u32;
            while let Some(field) = rx.recv().await {
                // Aggregation + GRIB encoding before the storage write.
                sim2.sleep(cfg.encode_cost).await;
                storage_rec.record(node, s as u32, n, EventKind::IoStart, sim2.now(), 0);
                fs.write_field(&field.key, field.data.clone())
                    .await
                    .expect("archive failed");
                let now = sim2.now();
                storage_rec.record(node, s as u32, n, EventKind::IoEnd, now, cfg.field_bytes);
                // End-to-end: from model emission to durable.
                e2e_rec.record(
                    0,
                    field.rank,
                    field.seq,
                    EventKind::IoStart,
                    field.emitted_at,
                    0,
                );
                e2e_rec.record(
                    0,
                    field.rank,
                    field.seq,
                    EventKind::IoEnd,
                    now,
                    cfg.field_bytes,
                );
                n += 1;
            }
        });
    }

    let end = sim.run().expect_quiescent();
    let storage_events = storage_rec.take();
    let e2e_events = e2e_rec.take();
    let fields = storage_events
        .iter()
        .filter(|e| e.kind == EventKind::IoEnd)
        .count() as u64;
    IoServerResult {
        storage: phase_stats(&storage_events, false),
        end_to_end: latency_stats(&e2e_events).expect("no fields archived"),
        fields,
        end_secs: end.as_secs_f64(),
    }
}

fn model_field_key(rank: u32, step: u32, f: u32) -> FieldKey {
    FieldKey::from_pairs([
        ("class", "od".to_string()),
        ("stream", "oper".to_string()),
        ("expver", "0001".to_string()),
        ("date", "20290101".to_string()),
        ("time", "0000".to_string()),
        ("number", rank.to_string()),
        ("step", step.to_string()),
        ("field", f.to_string()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fieldio::FieldIoMode;

    #[test]
    fn pipeline_archives_every_field() {
        let cfg = IoServerConfig::small();
        let r = run_ioserver_pipeline(&cfg);
        assert_eq!(r.fields, cfg.total_fields());
        assert_eq!(r.storage.total_bytes, cfg.total_fields() * cfg.field_bytes);
        assert!(r.storage.global_bw_gib > 0.0);
        assert!(r.end_secs > 0.0);
    }

    #[test]
    fn end_to_end_latency_exceeds_storage_write_alone() {
        let cfg = IoServerConfig::small();
        let r = run_ioserver_pipeline(&cfg);
        // The interconnect hop + queueing + encode must make the
        // end-to-end latency strictly larger than the encode cost.
        assert!(r.end_to_end.mean_us > cfg.encode_cost.as_nanos() as f64 / 1000.0);
        assert!(r.end_to_end.p50_us <= r.end_to_end.p99_us);
        assert_eq!(r.end_to_end.count as u64, cfg.total_fields());
    }

    #[test]
    fn more_ioservers_do_not_lose_fields() {
        let mut cfg = IoServerConfig::small();
        cfg.ioservers_per_node = 8;
        cfg.fieldio = FieldIoConfig::builder()
            .mode(FieldIoMode::NoContainers)
            .build();
        let r = run_ioserver_pipeline(&cfg);
        assert_eq!(r.fields, cfg.total_fields());
    }

    #[test]
    fn windowed_pipeline_archives_every_field_no_slower() {
        let mut cfg = IoServerConfig::small();
        let sequential = run_ioserver_pipeline(&cfg);
        cfg.fieldio = FieldIoConfig::builder().window(8).build();
        let pipelined = run_ioserver_pipeline(&cfg);
        assert_eq!(pipelined.fields, cfg.total_fields());
        assert_eq!(
            pipelined.storage.total_bytes,
            cfg.total_fields() * cfg.field_bytes
        );
        // Overlapping storage writes can only help the makespan.
        assert!(pipelined.end_secs <= sequential.end_secs);
        // And the windowed run is deterministic too.
        let again = run_ioserver_pipeline(&cfg);
        assert_eq!(pipelined.end_secs.to_bits(), again.end_secs.to_bits());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let cfg = IoServerConfig::small();
        let a = run_ioserver_pipeline(&cfg);
        let b = run_ioserver_pipeline(&cfg);
        assert_eq!(a.end_secs.to_bits(), b.end_secs.to_bits());
        assert_eq!(a.end_to_end.p99_us.to_bits(), b.end_to_end.p99_us.to_bits());
    }
}
