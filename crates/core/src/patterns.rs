//! Access patterns A and B (paper §5.3) over the simulated cluster.
//!
//! * **Pattern A** — *unique writes then unique reads*: every process
//!   writes its own new fields; once all writers on all nodes finish, an
//!   equally shaped process set reads them back. No contention for the
//!   same field, never mixed read/write traffic.
//! * **Pattern B** — *repeated writes while repeated reads*: after a
//!   setup phase populates designated fields, half the processes re-write
//!   them while the other half simultaneously reads them — the shape of
//!   real NWP output concurrent with product generation.
//!
//! Field I/O processes are deliberately *unsynchronised* within a phase
//! (no barriers), which is why results are reported as global timing
//! bandwidth (Eq. 2) rather than synchronous bandwidth.

use std::rc::Rc;

use serde::Serialize;

use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_kernel::sync::channel;
use daosim_kernel::Sim;

use crate::fieldio::{FieldIoConfig, FieldStore};
use crate::metrics::{phase_stats, EventKind, PhaseStats, Recorder};
use crate::workload::{payload, Contention, KeyGen};

/// Parameters of one pattern run.
#[derive(Clone, Debug)]
pub struct PatternConfig {
    pub cluster: ClusterSpec,
    pub fieldio: FieldIoConfig,
    pub contention: Contention,
    pub procs_per_node: u32,
    pub ops_per_proc: u32,
    pub field_bytes: u64,
    /// Verify read payload length/content markers (cheap checks).
    pub verify: bool,
}

impl PatternConfig {
    pub fn total_procs(&self) -> u32 {
        self.cluster.client_nodes as u32 * self.procs_per_node
    }
}

/// Outcome of one pattern run.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PatternResult {
    pub write: PhaseStats,
    pub read: PhaseStats,
    /// Simulated seconds for the whole run, including setup.
    pub end_secs: f64,
}

impl PatternResult {
    /// Aggregate application throughput — the figure of merit for mixed
    /// workloads (paper: "write and read bandwidth should be aggregated").
    pub fn aggregate_gib(&self) -> f64 {
        self.write.global_bw_gib + self.read.global_bw_gib
    }
}

fn proc_location(cfg: &PatternConfig, process: u32) -> (u16, u32) {
    (
        (process / cfg.procs_per_node) as u16,
        process % cfg.procs_per_node,
    )
}

async fn connect_store_as(
    d: &Rc<Deployment>,
    cfg: &PatternConfig,
    process: u32,
    client_id: u32,
) -> FieldStore<SimClient> {
    let (node, rank) = proc_location(cfg, process);
    let client = SimClient::for_process(d, node, rank);
    FieldStore::connect(client, cfg.fieldio.clone(), client_id)
        .await
        .expect("connect failed")
}

async fn connect_store(
    d: &Rc<Deployment>,
    cfg: &PatternConfig,
    process: u32,
) -> FieldStore<SimClient> {
    connect_store_as(d, cfg, process, process + 1).await
}

/// Runs access pattern A. Returns write-phase and read-phase statistics.
pub fn run_pattern_a(cfg: &PatternConfig) -> PatternResult {
    let sim = Sim::new();
    let d = Deployment::new(&sim, cfg.cluster);
    let gen = KeyGen::new(cfg.contention);
    let data = payload(cfg.field_bytes, 42);
    let write_rec = Recorder::new();
    let read_rec = Recorder::new();
    let procs = cfg.total_procs();

    let (done_tx, mut done_rx) = channel::<()>();
    for p in 0..procs {
        let (d, cfg, data, rec, done) = (
            Rc::clone(&d),
            cfg.clone(),
            data.clone(),
            write_rec.clone(),
            done_tx.clone(),
        );
        let sim2 = sim.clone();
        sim.spawn(async move {
            let fs = connect_store(&d, &cfg, p).await;
            let (node, _) = proc_location(&cfg, p);
            for op in 0..cfg.ops_per_proc {
                let key = gen.field_key(p, op);
                rec.record(node, p, op, EventKind::IoStart, sim2.now(), 0);
                fs.write_field(&key, data.clone())
                    .await
                    .expect("write failed");
                rec.record(node, p, op, EventKind::IoEnd, sim2.now(), cfg.field_bytes);
            }
            done.send(());
        });
    }
    drop(done_tx);

    // Orchestrator: wait for every writer, then launch the reader set.
    {
        let (d, cfg, sim2, read_rec) = (Rc::clone(&d), cfg.clone(), sim.clone(), read_rec.clone());
        let expected = cfg.field_bytes;
        sim.spawn(async move {
            let mut remaining = procs;
            while remaining > 0 {
                done_rx.recv().await.expect("writer vanished");
                remaining -= 1;
            }
            for p in 0..procs {
                let (d, cfg, rec, sim3) =
                    (Rc::clone(&d), cfg.clone(), read_rec.clone(), sim2.clone());
                sim2.spawn(async move {
                    let fs = connect_store(&d, &cfg, p).await;
                    let (node, _) = proc_location(&cfg, p);
                    for op in 0..cfg.ops_per_proc {
                        let key = gen.field_key(p, op);
                        rec.record(node, p, op, EventKind::IoStart, sim3.now(), 0);
                        let got = fs.read_field(&key).await.expect("read failed");
                        rec.record(node, p, op, EventKind::IoEnd, sim3.now(), got.len() as u64);
                        if cfg.verify {
                            assert_eq!(got.len() as u64, expected, "short read for {key}");
                        }
                    }
                });
            }
        });
    }

    let end = sim.run().expect_quiescent();
    PatternResult {
        write: phase_stats(&write_rec.take(), false),
        read: phase_stats(&read_rec.take(), false),
        end_secs: end.as_secs_f64(),
    }
}

/// Runs access pattern B. Half the processes re-write their designated
/// field while the other half reads it; stats cover the main phase only.
pub fn run_pattern_b(cfg: &PatternConfig) -> PatternResult {
    assert!(
        cfg.total_procs() >= 2,
        "pattern B needs at least one writer/reader pair"
    );
    let sim = Sim::new();
    let d = Deployment::new(&sim, cfg.cluster);
    let gen = KeyGen::new(cfg.contention);
    let data = payload(cfg.field_bytes, 42);
    let write_rec = Recorder::new();
    let read_rec = Recorder::new();
    let procs = cfg.total_procs();
    let writers = procs / 2;

    // Setup phase: each writer populates its designated field (op 0 key).
    let (setup_tx, mut setup_rx) = channel::<()>();
    for w in 0..writers {
        let (d, cfg, data, done) = (Rc::clone(&d), cfg.clone(), data.clone(), setup_tx.clone());
        sim.spawn(async move {
            let fs = connect_store(&d, &cfg, w).await;
            fs.write_field(&gen.field_key(w, 0), data.clone())
                .await
                .expect("setup write failed");
            done.send(());
        });
    }
    drop(setup_tx);

    // Orchestrator: once setup completes, run writers and readers
    // simultaneously with no further synchronisation.
    {
        let (d, cfg, sim2) = (Rc::clone(&d), cfg.clone(), sim.clone());
        let (write_rec, read_rec, data) = (write_rec.clone(), read_rec.clone(), data.clone());
        sim.spawn(async move {
            let mut remaining = writers;
            while remaining > 0 {
                setup_rx.recv().await.expect("setup writer vanished");
                remaining -= 1;
            }
            for w in 0..writers {
                let (d, cfg, rec, sim3, data) = (
                    Rc::clone(&d),
                    cfg.clone(),
                    write_rec.clone(),
                    sim2.clone(),
                    data.clone(),
                );
                sim2.spawn(async move {
                    // Distinct oid namespace from the setup-phase store
                    // this "process" used (same process, fresh handle).
                    let fs = connect_store_as(&d, &cfg, w, procs + w + 1).await;
                    let (node, _) = proc_location(&cfg, w);
                    let key = gen.field_key(w, 0);
                    for op in 0..cfg.ops_per_proc {
                        rec.record(node, w, op, EventKind::IoStart, sim3.now(), 0);
                        fs.write_field(&key, data.clone())
                            .await
                            .expect("re-write failed");
                        rec.record(node, w, op, EventKind::IoEnd, sim3.now(), cfg.field_bytes);
                    }
                });
            }
            for r in 0..(procs - writers) {
                // Reader process ids continue after the writers'.
                let pid = writers + r;
                let target_writer = r % writers;
                let (d, cfg, rec, sim3) =
                    (Rc::clone(&d), cfg.clone(), read_rec.clone(), sim2.clone());
                sim2.spawn(async move {
                    let fs = connect_store(&d, &cfg, pid).await;
                    let (node, _) = proc_location(&cfg, pid);
                    let key = gen.field_key(target_writer, 0);
                    for op in 0..cfg.ops_per_proc {
                        rec.record(node, pid, op, EventKind::IoStart, sim3.now(), 0);
                        let got = fs.read_field(&key).await.expect("read failed");
                        rec.record(
                            node,
                            pid,
                            op,
                            EventKind::IoEnd,
                            sim3.now(),
                            got.len() as u64,
                        );
                        if cfg.verify {
                            assert_eq!(got.len() as u64, cfg.field_bytes);
                        }
                    }
                });
            }
        });
    }

    let end = sim.run().expect_quiescent();
    PatternResult {
        write: phase_stats(&write_rec.take(), false),
        read: phase_stats(&read_rec.take(), false),
        end_secs: end.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fieldio::FieldIoMode;
    use crate::workload::MIB;

    fn tiny(mode: FieldIoMode, contention: Contention) -> PatternConfig {
        PatternConfig {
            cluster: ClusterSpec::tcp(1, 2),
            fieldio: FieldIoConfig::builder().mode(mode).build(),
            contention,
            procs_per_node: 4,
            ops_per_proc: 6,
            field_bytes: MIB,
            verify: true,
        }
    }

    #[test]
    fn pattern_a_runs_all_modes() {
        for mode in FieldIoMode::all() {
            for contention in [Contention::High, Contention::Low] {
                let cfg = tiny(mode, contention);
                let r = run_pattern_a(&cfg);
                let expect = (cfg.total_procs() * cfg.ops_per_proc) as u64 * MIB;
                assert_eq!(r.write.total_bytes, expect, "{mode}/{}", contention.name());
                assert_eq!(r.read.total_bytes, expect);
                assert!(r.write.global_bw_gib > 0.0);
                assert!(r.read.global_bw_gib > 0.0);
            }
        }
    }

    #[test]
    fn pattern_b_runs_all_modes() {
        for mode in FieldIoMode::all() {
            let cfg = tiny(mode, Contention::Low);
            let r = run_pattern_b(&cfg);
            let half = (cfg.total_procs() / 2 * cfg.ops_per_proc) as u64 * MIB;
            assert_eq!(r.write.total_bytes, half);
            assert_eq!(r.read.total_bytes, half);
            assert!(r.aggregate_gib() > 0.0);
        }
    }

    #[test]
    fn pattern_runs_are_deterministic() {
        let cfg = tiny(FieldIoMode::Full, Contention::Low);
        let a = run_pattern_a(&cfg);
        let b = run_pattern_a(&cfg);
        assert_eq!(a.end_secs, b.end_secs);
        assert_eq!(a.write.global_bw_gib, b.write.global_bw_gib);
        assert_eq!(a.read.global_bw_gib, b.read.global_bw_gib);
    }

    #[test]
    fn no_index_contention_hurts_pattern_b() {
        // Re-writes to md5-stable oids contend with readers on the same
        // object; indexed re-writes (fresh arrays) do not. This is the
        // mechanism behind Fig. 5's pattern-B ordering.
        let idx = run_pattern_b(&tiny(FieldIoMode::NoContainers, Contention::Low));
        let noidx = run_pattern_b(&tiny(FieldIoMode::NoIndex, Contention::Low));
        assert!(
            noidx.aggregate_gib() < idx.aggregate_gib(),
            "no-index {:.2} should trail indexed {:.2} under pattern B",
            noidx.aggregate_gib(),
            idx.aggregate_gib()
        );
    }
}
