//! Workload generation: realistic weather-field keys and payloads.
//!
//! The benchmark's contention regimes (paper §5.2/§6.3) fall out of the
//! keys: under **high contention** every process writes fields of one
//! shared forecast, so all of them index into the same forecast Key-Value
//! and containers; under **low contention** each process owns an ensemble
//! member (`number=<proc>`), giving it its own forecast Key-Value — the
//! two configurations the paper evaluates.

use bytes::Bytes;

use crate::key::FieldKey;

pub const MIB: u64 = 1024 * 1024;

/// Upper-air parameters a real IFS run outputs, used round-robin.
pub const PARAMS: [&str; 10] = ["t", "u", "v", "q", "w", "z", "r", "d", "vo", "o3"];

/// Pressure levels (hPa).
pub const LEVELS: [u32; 12] = [1000, 925, 850, 700, 500, 400, 300, 250, 200, 100, 50, 10];

/// Index-KV contention regime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Contention {
    /// One shared forecast (single forecast index Key-Value) across all
    /// processes — the paper's pessimistic configuration.
    High,
    /// One forecast per process (own index Key-Value) — the optimistic,
    /// operationally realistic configuration.
    Low,
}

impl Contention {
    pub fn name(self) -> &'static str {
        match self {
            Contention::High => "high",
            Contention::Low => "low",
        }
    }
}

/// Deterministic field-key generator for benchmark processes.
#[derive(Clone, Copy, Debug)]
pub struct KeyGen {
    pub contention: Contention,
}

impl KeyGen {
    pub fn new(contention: Contention) -> Self {
        KeyGen { contention }
    }

    /// The key written/read by `(global process id, op index)`.
    ///
    /// Keys are unique per `(process, op)` in both regimes; the regimes
    /// differ only in the most-significant part (shared vs per-process).
    pub fn field_key(&self, process: u32, op: u32) -> FieldKey {
        let mut key = FieldKey::from_pairs([
            ("class", "od".to_string()),
            ("stream", "oper".to_string()),
            ("expver", "0001".to_string()),
            ("date", "20290101".to_string()),
            ("time", "0000".to_string()),
            ("param", PARAMS[(op as usize) % PARAMS.len()].to_string()),
            (
                "levelist",
                LEVELS[(op as usize / PARAMS.len()) % LEVELS.len()].to_string(),
            ),
            (
                "step",
                (op / (PARAMS.len() * LEVELS.len()) as u32).to_string(),
            ),
        ]);
        match self.contention {
            Contention::High => {
                // Shared forecast: disambiguate fields by emitting rank as
                // a least-significant pair (an I/O-server shard id).
                key.set("shard", process.to_string());
            }
            Contention::Low => {
                // Own forecast per process: ensemble member number is
                // most-significant under the ECMWF schema.
                key.set("number", process.to_string());
            }
        }
        key
    }
}

/// A deterministic pseudo-random payload of `bytes` bytes. Benchmarks
/// clone this one buffer for every field, keeping memory flat (the store
/// is extent-based and reference-counted).
pub fn payload(bytes: u64, seed: u64) -> Bytes {
    let mut v = Vec::with_capacity(bytes as usize);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    while (v.len() as u64) < bytes {
        state = daosim_kernel::rng::splitmix64(state);
        let chunk = state.to_le_bytes();
        let take = ((bytes as usize) - v.len()).min(8);
        v.extend_from_slice(&chunk[..take]);
    }
    Bytes::from(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeySchema;

    #[test]
    fn high_contention_shares_msk() {
        let g = KeyGen::new(Contention::High);
        let s = KeySchema::ecmwf();
        let a = g.field_key(0, 0).split(&s).0;
        let b = g.field_key(57, 3).split(&s).0;
        assert_eq!(a, b, "all processes must share one forecast");
    }

    #[test]
    fn low_contention_separates_msk_per_process() {
        let g = KeyGen::new(Contention::Low);
        let s = KeySchema::ecmwf();
        let a = g.field_key(0, 0).split(&s).0;
        let b = g.field_key(1, 0).split(&s).0;
        assert_ne!(a, b);
        // Same process, different op: same forecast.
        let c = g.field_key(0, 5).split(&s).0;
        assert_eq!(a, c);
    }

    #[test]
    fn keys_are_unique_per_process_and_op() {
        for contention in [Contention::High, Contention::Low] {
            let g = KeyGen::new(contention);
            let mut seen = std::collections::HashSet::new();
            for p in 0..8 {
                for op in 0..200 {
                    assert!(
                        seen.insert(g.field_key(p, op).canonical()),
                        "duplicate key p={p} op={op} ({contention:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn op_sequence_walks_params_levels_steps() {
        let g = KeyGen::new(Contention::Low);
        let k0 = g.field_key(0, 0);
        let k1 = g.field_key(0, 1);
        assert_eq!(k0.get("param"), Some("t"));
        assert_eq!(k1.get("param"), Some("u"));
        assert_eq!(k0.get("step"), Some("0"));
        let k120 = g.field_key(0, 120);
        assert_eq!(k120.get("step"), Some("1"));
    }

    #[test]
    fn payload_is_deterministic_and_sized() {
        let a = payload(1000, 7);
        let b = payload(1000, 7);
        let c = payload(1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert_eq!(payload(0, 1).len(), 0);
        assert_eq!(payload(13, 1).len(), 13);
    }
}
