//! MARS-style multi-field requests.
//!
//! Operational access to the field store is rarely one key at a time:
//! product-generation tasks retrieve *requests* — a keyword → value-list
//! mapping whose cartesian expansion names many fields (`param=t/u/v,
//! levelist=500/850, step=0/24`). This module provides that request
//! semantics over any [`FieldStore`] backend, mirroring how FDB5's
//! retrieve interface drives the same underlying object layout.

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::fieldio::{FieldIoError, FieldResult, FieldStore};
use crate::key::FieldKey;
use daosim_objstore::prelude::DaosApi;

/// A request: each keyword carries one or more values; the request
/// expands to the cartesian product of all value lists.
///
/// ```
/// use daosim_core::request::Request;
///
/// let req = Request::parse("class=od,param=t/u/v,levelist=500/850").unwrap();
/// assert_eq!(req.cardinality(), 6);
/// let keys = req.expand();
/// assert_eq!(keys.len(), 6);
/// assert_eq!(keys[0].get("class"), Some("od"));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Request {
    entries: BTreeMap<String, Vec<String>>,
}

impl Request {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a keyword to one or more values (replacing earlier values).
    pub fn set<I, S>(&mut self, keyword: impl Into<String>, values: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vals: Vec<String> = values.into_iter().map(Into::into).collect();
        assert!(
            !vals.is_empty(),
            "a request keyword needs at least one value"
        );
        self.entries.insert(keyword.into(), vals);
        self
    }

    /// Builds a request from a single fully specified key.
    pub fn from_key(key: &FieldKey) -> Self {
        let mut r = Request::new();
        for part in key.canonical().split(',').filter(|s| !s.is_empty()) {
            let (k, v) = part.split_once('=').expect("canonical key is k=v");
            r.set(k, [v]);
        }
        r
    }

    /// Number of concrete fields this request names.
    pub fn cardinality(&self) -> usize {
        self.entries.values().map(Vec::len).product()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Expands to every concrete [`FieldKey`], in deterministic
    /// (keyword-then-value) order.
    pub fn expand(&self) -> Vec<FieldKey> {
        let mut keys = vec![FieldKey::new()];
        for (kw, values) in &self.entries {
            let mut next = Vec::with_capacity(keys.len() * values.len());
            for key in &keys {
                for v in values {
                    let mut k = key.clone();
                    k.set(kw.clone(), v.clone());
                    next.push(k);
                }
            }
            keys = next;
        }
        keys
    }

    /// Parses the compact text form `param=t/u/v,levelist=500/850`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut r = Request::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, vs) = part
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in {part:?}"))?;
            let values: Vec<&str> = vs.split('/').filter(|v| !v.is_empty()).collect();
            if values.is_empty() {
                return Err(format!("keyword {k:?} has no values"));
            }
            r.set(k.trim(), values);
        }
        if r.is_empty() {
            return Err("empty request".to_string());
        }
        Ok(r)
    }
}

/// Outcome of a multi-field retrieval.
#[derive(Debug)]
pub struct Retrieval {
    /// `(key, data)` for every field found, in expansion order.
    pub fields: Vec<(FieldKey, Bytes)>,
    /// Keys named by the request but absent from the store.
    pub missing: Vec<FieldKey>,
}

impl Retrieval {
    pub fn total_bytes(&self) -> u64 {
        self.fields.iter().map(|(_, d)| d.len() as u64).sum()
    }

    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// Retrieves every field a request names. Fields are fetched
/// sequentially, as a post-processing task consuming one request does.
pub async fn retrieve<D: DaosApi>(fs: &FieldStore<D>, req: &Request) -> FieldResult<Retrieval> {
    let mut fields = Vec::new();
    let mut missing = Vec::new();
    for key in req.expand() {
        match fs.read_field(&key).await {
            Ok(data) => fields.push((key, data)),
            Err(FieldIoError::FieldNotFound(_)) => missing.push(key),
            Err(e) => return Err(e),
        }
    }
    Ok(Retrieval { fields, missing })
}

/// Archives one payload per expanded key (testing and data staging).
pub async fn archive_all<D: DaosApi>(
    fs: &FieldStore<D>,
    req: &Request,
    payload: impl Fn(&FieldKey) -> Bytes,
) -> FieldResult<usize> {
    let keys = req.expand();
    for key in &keys {
        fs.write_field(key, payload(key)).await?;
    }
    Ok(keys.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fieldio::FieldIoConfig;
    use daosim_objstore::prelude::EmbeddedClient;
    use daosim_objstore::DaosStore;

    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        let waker = std::task::Waker::noop();
        let mut cx = std::task::Context::from_waker(waker);
        let mut fut = std::pin::pin!(fut);
        match fut.as_mut().poll(&mut cx) {
            std::task::Poll::Ready(v) => v,
            std::task::Poll::Pending => panic!("embedded backend suspended"),
        }
    }

    fn base_request() -> Request {
        let mut r = Request::new();
        r.set("class", ["od"])
            .set("date", ["20290101"])
            .set("expver", ["0001"])
            .set("param", ["t", "u", "v"])
            .set("levelist", ["500", "850"])
            .set("step", ["0", "24"]);
        r
    }

    #[test]
    fn cardinality_and_expansion_agree() {
        let r = base_request();
        assert_eq!(r.cardinality(), 12);
        let keys = r.expand();
        assert_eq!(keys.len(), 12);
        let mut dedup: Vec<String> = keys.iter().map(|k| k.canonical()).collect();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12, "expansion must not repeat keys");
    }

    #[test]
    fn expansion_is_deterministic() {
        assert_eq!(base_request().expand(), base_request().expand());
    }

    #[test]
    fn parse_round_trips() {
        let r = Request::parse("class=od,param=t/u/v,levelist=500/850").unwrap();
        assert_eq!(r.cardinality(), 6);
        assert!(Request::parse("").is_err());
        assert!(Request::parse("param").is_err());
        assert!(Request::parse("param=").is_err());
    }

    #[test]
    fn from_key_is_singleton() {
        let key = FieldKey::from_pairs([("class", "od"), ("param", "t")]);
        let r = Request::from_key(&key);
        assert_eq!(r.cardinality(), 1);
        assert_eq!(r.expand()[0], key);
    }

    #[test]
    fn retrieve_partitions_found_and_missing() {
        let (_s, pool) = DaosStore::with_single_pool(24);
        let fs = block_on(FieldStore::connect(
            EmbeddedClient::new(pool),
            FieldIoConfig::default(),
            1,
        ))
        .unwrap();
        let req = base_request();
        // Archive only the step=0 half.
        let mut half = base_request();
        half.set("step", ["0"]);
        let n = block_on(archive_all(&fs, &half, |k| {
            Bytes::from(k.canonical().into_bytes())
        }))
        .unwrap();
        assert_eq!(n, 6);

        let got = block_on(retrieve(&fs, &req)).unwrap();
        assert_eq!(got.fields.len(), 6);
        assert_eq!(got.missing.len(), 6);
        assert!(!got.is_complete());
        for (key, data) in &got.fields {
            assert_eq!(data.as_ref(), key.canonical().as_bytes());
            assert_eq!(key.get("step"), Some("0"));
        }
        for key in &got.missing {
            assert_eq!(key.get("step"), Some("24"));
        }

        // Completing the archive completes the retrieval.
        block_on(archive_all(&fs, &req, |k| {
            Bytes::from(k.canonical().into_bytes())
        }))
        .unwrap();
        let got = block_on(retrieve(&fs, &req)).unwrap();
        assert!(got.is_complete());
        assert_eq!(got.fields.len(), 12);
        assert_eq!(
            got.total_bytes(),
            got.fields
                .iter()
                .map(|(k, _)| k.canonical().len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_value_list_panics() {
        Request::new().set("param", Vec::<String>::new());
    }
}
