//! Workload traces: synthesize, persist, and replay field I/O schedules.
//!
//! The paper's benchmarks drive the store as fast as it will go; real
//! operations drive it on the *model's* schedule — fields appear when the
//! forecast reaches each output step, and the question is whether storage
//! keeps up inside the time-critical window. A [`Trace`] captures such a
//! schedule (`when` each process wants to write/read `which` field), and
//! [`replay`] runs it against the simulated cluster either *paced*
//! (honouring timestamps; reports tardiness — how far behind schedule
//! operations complete) or *as fast as possible* (a classic benchmark).

use std::rc::Rc;

use serde::Serialize;

use daosim_cluster::{ClusterSpec, Deployment, FaultPlan, ResilienceReport, SimClient};
use daosim_kernel::sync::WaitGroup;
use daosim_kernel::{MetricsSnapshot, Sim, SimDuration, SimTime, SpanEvent};

use crate::fieldio::{FieldIoConfig, FieldStore};
use crate::key::FieldKey;
use crate::metrics::{phase_stats, EventKind, EventRecord, PhaseStats, Recorder};
use crate::workload::payload;

/// One scheduled operation.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Scheduled start, nanoseconds from trace origin.
    pub t_ns: u64,
    /// Issuing process.
    pub process: u32,
    /// `true` = write, `false` = read.
    pub write: bool,
    /// The field key, canonical text.
    pub key: String,
    /// Payload size for writes (ignored for reads).
    pub bytes: u64,
}

/// An ordered schedule of field operations.
///
/// ```
/// use daosim_core::trace::Trace;
/// use daosim_kernel::SimDuration;
///
/// let t = Trace::synthesize_operational(4, 2, 3, 1 << 20, SimDuration::from_millis(50));
/// assert_eq!(t.len(), 4 * 2 * 3 * 2); // writes + trailing reads
/// let parsed = Trace::from_csv(&t.to_csv()).unwrap();
/// assert_eq!(parsed, t);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Synthesizes an operational-cycle schedule: `procs` I/O-server
    /// processes each emit `fields_per_step` writes per forecast step,
    /// steps `step_interval` apart; reads of each step are scheduled one
    /// step later (product generation consuming the previous step).
    pub fn synthesize_operational(
        procs: u32,
        steps: u32,
        fields_per_step: u32,
        field_bytes: u64,
        step_interval: SimDuration,
    ) -> Trace {
        let mut entries = Vec::new();
        for step in 0..steps {
            let step_t = step as u64 * step_interval.as_nanos();
            for p in 0..procs {
                for f in 0..fields_per_step {
                    // Writes spread evenly through the step window.
                    let jitter = f as u64 * step_interval.as_nanos() / (fields_per_step as u64 + 1);
                    let key = Self::key(p, step, f);
                    entries.push(TraceEntry {
                        t_ns: step_t + jitter,
                        process: p,
                        write: true,
                        key: key.clone(),
                        bytes: field_bytes,
                    });
                    entries.push(TraceEntry {
                        t_ns: step_t + step_interval.as_nanos() + jitter,
                        process: p,
                        write: false,
                        key,
                        bytes: field_bytes,
                    });
                }
            }
        }
        entries.sort_by_key(|e| (e.t_ns, e.process));
        Trace { entries }
    }

    fn key(p: u32, step: u32, f: u32) -> String {
        FieldKey::from_pairs([
            ("class", "od".to_string()),
            ("date", "20290101".to_string()),
            ("expver", "0001".to_string()),
            ("number", p.to_string()),
            ("step", step.to_string()),
            ("field", f.to_string()),
        ])
        .canonical()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn total_write_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.write)
            .map(|e| e.bytes)
            .sum()
    }

    /// CSV form: `t_ns,process,op,bytes,key` (the key goes last because
    /// canonical keys contain commas).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("t_ns,process,op,bytes,key\n");
        for e in &self.entries {
            use std::fmt::Write as _;
            let _ = writeln!(
                s,
                "{},{},{},{},{}",
                e.t_ns,
                e.process,
                if e.write { "w" } else { "r" },
                e.bytes,
                e.key
            );
        }
        s
    }

    /// Parses the CSV form produced by [`Trace::to_csv`], validating and
    /// normalising the schedule:
    ///
    /// * timestamps must be non-decreasing — replay walks each process's
    ///   entries in file order, so an out-of-order line would silently
    ///   reorder the schedule; the error names the offending line;
    /// * sparse process ids are densely renumbered (order-preserving):
    ///   [`Trace::process_count`] is `max + 1`, so gaps would spawn
    ///   processes with no work and skew per-process aggregation.
    pub fn from_csv(text: &str) -> Result<Trace, String> {
        let mut entries = Vec::new();
        let mut prev_t: Option<u64> = None;
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(5, ',');
            let mut field = |name: &str| {
                parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing {name}", i + 1))
            };
            let t_ns: u64 = field("t_ns")?
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            if let Some(p) = prev_t {
                if t_ns < p {
                    return Err(format!(
                        "line {}: timestamp {t_ns} goes backwards (previous line had {p}); \
                         traces must be sorted by t_ns",
                        i + 1
                    ));
                }
            }
            prev_t = Some(t_ns);
            let process = field("process")?
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            let write = match field("op")? {
                "w" => true,
                "r" => false,
                other => return Err(format!("line {}: bad op {other:?}", i + 1)),
            };
            let bytes = field("bytes")?
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            let key = field("key")?.to_string();
            if FieldKey::parse(&key).is_err() {
                return Err(format!("line {}: unparsable key {key:?}", i + 1));
            }
            entries.push(TraceEntry {
                t_ns,
                process,
                write,
                key,
                bytes,
            });
        }
        // Densify sparse process ids, preserving relative order.
        let mut ids: Vec<u32> = entries.iter().map(|e| e.process).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.last().is_some_and(|&max| max as usize + 1 != ids.len()) {
            let remap: std::collections::HashMap<u32, u32> = ids
                .iter()
                .enumerate()
                .map(|(dense, &sparse)| (sparse, dense as u32))
                .collect();
            for e in &mut entries {
                e.process = remap[&e.process];
            }
        }
        Ok(Trace { entries })
    }

    pub fn process_count(&self) -> u32 {
        self.entries
            .iter()
            .map(|e| e.process + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Replay pacing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pacing {
    /// Honour trace timestamps: an op never *starts* before its schedule.
    Paced,
    /// Ignore timestamps; issue operations back to back per process.
    AsFast,
}

/// Resilience counters for one replay: what the retry machinery did, plus
/// how many trace operations failed outright (exhausted retries or hit a
/// permanent error).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ResilienceCounters {
    pub retries: u64,
    pub timeouts: u64,
    pub failovers: u64,
    pub gave_up: u64,
    pub faults_injected: u64,
    pub failed_writes: u64,
    pub failed_reads: u64,
}

impl ResilienceCounters {
    fn from_report(r: ResilienceReport, failed_writes: u64, failed_reads: u64) -> Self {
        ResilienceCounters {
            retries: r.retries,
            timeouts: r.timeouts,
            failovers: r.failovers,
            gave_up: r.gave_up,
            faults_injected: r.faults_injected,
            failed_writes,
            failed_reads,
        }
    }
}

/// Outcome of a trace replay.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ReplayStats {
    pub writes: PhaseStats,
    pub reads: PhaseStats,
    /// Mean completion lateness vs schedule, milliseconds (paced only;
    /// zero-ish when storage keeps up).
    pub mean_tardiness_ms: f64,
    /// Worst completion lateness, milliseconds.
    pub max_tardiness_ms: f64,
    pub end_secs: f64,
    /// Retry/timeout/failover activity observed during the replay.
    pub resilience: ResilienceCounters,
}

/// [`ReplayStats`] plus the raw event streams, for timeline analysis
/// (e.g. bucketing completions around an injected fault).
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    pub stats: ReplayStats,
    pub write_events: Vec<EventRecord>,
    pub read_events: Vec<EventRecord>,
}

/// Replays `trace` on a fresh deployment of `spec`, one task per process.
pub fn replay(
    spec: ClusterSpec,
    fieldio: FieldIoConfig,
    trace: &Trace,
    pacing: Pacing,
) -> ReplayStats {
    replay_detailed(spec, fieldio, trace, pacing, None).stats
}

/// Like [`replay`], optionally injecting `faults` while the trace runs.
///
/// With faults in play operations may fail (retry budget exhausted, or
/// fail-fast policy): failed ops are *counted* — not panicked on — and
/// leave an `IoStart` without a matching `IoEnd`, so they also surface
/// through [`crate::metrics::LatencyStats::incomplete`] and the dropped
/// iteration count of bandwidth summaries.
pub fn replay_detailed(
    spec: ClusterSpec,
    fieldio: FieldIoConfig,
    trace: &Trace,
    pacing: Pacing,
    faults: Option<&FaultPlan>,
) -> ReplayOutcome {
    let sim = Sim::new();
    replay_on(&sim, spec, fieldio, trace, pacing, faults).0
}

/// A [`ReplayOutcome`] plus the run's observability artifacts: the raw
/// span event stream and the final metrics snapshot (client op counters
/// and latencies, per-engine media and busy-time counters, objstore op
/// counts, resilience counters).
#[derive(Clone, Debug)]
pub struct TracedReplay {
    pub outcome: ReplayOutcome,
    pub spans: Vec<SpanEvent>,
    pub metrics: MetricsSnapshot,
}

/// Like [`replay_detailed`], but with span tracing enabled for the whole
/// run. Tracing is keyed on sim time only, so the replay outcome is
/// bit-identical to an untraced run, and two traced runs of the same
/// trace produce byte-identical span streams.
pub fn replay_traced(
    spec: ClusterSpec,
    fieldio: FieldIoConfig,
    trace: &Trace,
    pacing: Pacing,
    faults: Option<&FaultPlan>,
) -> TracedReplay {
    let sim = Sim::new();
    sim.obs().set_enabled(true);
    let (outcome, d) = replay_on(&sim, spec, fieldio, trace, pacing, faults);
    d.fold_metrics();
    let m = sim.obs().metrics();
    m.counter("replay.write_ios")
        .add(outcome.stats.writes.io_count as u64);
    m.counter("replay.read_ios")
        .add(outcome.stats.reads.io_count as u64);
    m.counter("replay.write_bytes")
        .add(outcome.stats.writes.total_bytes);
    m.counter("replay.read_bytes")
        .add(outcome.stats.reads.total_bytes);
    let metrics = m.snapshot();
    let spans = sim.obs().take_events();
    TracedReplay {
        outcome,
        spans,
        metrics,
    }
}

fn replay_on(
    sim: &Sim,
    mut spec: ClusterSpec,
    fieldio: FieldIoConfig,
    trace: &Trace,
    pacing: Pacing,
    faults: Option<&FaultPlan>,
) -> (ReplayOutcome, Rc<Deployment>) {
    if let Some(admission) = fieldio.admission {
        spec.admission = admission;
    }
    let d = Deployment::new(sim, spec);
    if let Some(plan) = faults {
        plan.apply(&d);
    }
    let procs = trace.process_count();
    assert!(procs > 0, "empty trace");
    let ppn = procs.div_ceil(spec.client_nodes as u32);
    let write_rec = Recorder::new();
    let read_rec = Recorder::new();
    let tardiness: Rc<std::cell::RefCell<Vec<u64>>> = Rc::default();
    let failed_writes = Rc::new(std::cell::Cell::new(0u64));
    let failed_reads = Rc::new(std::cell::Cell::new(0u64));
    let wg = WaitGroup::new();

    for p in 0..procs {
        let mine: Vec<TraceEntry> = trace
            .entries
            .iter()
            .filter(|e| e.process == p)
            .cloned()
            .collect();
        if mine.is_empty() {
            continue;
        }
        let (d, fieldio, sim2, token) = (Rc::clone(&d), fieldio.clone(), sim.clone(), wg.add());
        let (write_rec, read_rec, tardiness) =
            (write_rec.clone(), read_rec.clone(), Rc::clone(&tardiness));
        let (failed_writes, failed_reads) = (Rc::clone(&failed_writes), Rc::clone(&failed_reads));
        sim.spawn(async move {
            let window = fieldio.inflight_window;
            let client = SimClient::for_process(&d, (p / ppn) as u16, p % ppn);
            let fs = FieldStore::connect(client, fieldio, p + 1)
                .await
                .expect("connect");
            if window > 1 {
                // Pipelined replay: writes go through the windowed writer
                // (completion recorded from the callback); reads flush the
                // writer first so read-after-write order is preserved.
                let mut w = fs.pipelined_writer(window);
                for (i, e) in mine.iter().enumerate() {
                    if pacing == Pacing::Paced {
                        let due = SimTime::from_nanos(e.t_ns);
                        let now = sim2.now();
                        if due > now {
                            sim2.sleep(due - now).await;
                        }
                    }
                    let key = FieldKey::parse(&e.key).expect("trace keys validated");
                    if e.write {
                        write_rec.record(0, p, i as u32, EventKind::IoStart, sim2.now(), 0);
                        let (write_rec, tardiness, failed_writes, sim3) = (
                            write_rec.clone(),
                            Rc::clone(&tardiness),
                            Rc::clone(&failed_writes),
                            sim2.clone(),
                        );
                        let (t_ns, bytes, seq) = (e.t_ns, e.bytes, i as u32);
                        w.submit_with(
                            &key,
                            payload(e.bytes, e.t_ns ^ p as u64),
                            move |r| match r {
                                Ok(()) => {
                                    let now = sim3.now();
                                    write_rec.record(0, p, seq, EventKind::IoEnd, now, bytes);
                                    if pacing == Pacing::Paced {
                                        tardiness
                                            .borrow_mut()
                                            .push(now.as_nanos().saturating_sub(t_ns));
                                    }
                                }
                                Err(_) => failed_writes.set(failed_writes.get() + 1),
                            },
                        )
                        .await
                        .expect("pipelined submit");
                        continue;
                    }
                    w.flush().await.expect("pipelined flush");
                    read_rec.record(0, p, i as u32, EventKind::IoStart, sim2.now(), 0);
                    match fs.read_field(&key).await {
                        Ok(data) => {
                            let now = sim2.now();
                            read_rec.record(
                                0,
                                p,
                                i as u32,
                                EventKind::IoEnd,
                                now,
                                data.len() as u64,
                            );
                            if pacing == Pacing::Paced {
                                tardiness
                                    .borrow_mut()
                                    .push(now.as_nanos().saturating_sub(e.t_ns));
                            }
                        }
                        Err(_) => failed_reads.set(failed_reads.get() + 1),
                    }
                }
                w.flush().await.expect("pipelined flush");
                drop(token);
                return;
            }
            for (i, e) in mine.iter().enumerate() {
                if pacing == Pacing::Paced {
                    let due = SimTime::from_nanos(e.t_ns);
                    let now = sim2.now();
                    if due > now {
                        sim2.sleep(due - now).await;
                    }
                }
                let key = FieldKey::parse(&e.key).expect("trace keys validated");
                let rec = if e.write { &write_rec } else { &read_rec };
                rec.record(0, p, i as u32, EventKind::IoStart, sim2.now(), 0);
                let done_bytes = if e.write {
                    match fs
                        .write_field(&key, payload(e.bytes, e.t_ns ^ p as u64))
                        .await
                    {
                        Ok(()) => e.bytes,
                        Err(_) => {
                            failed_writes.set(failed_writes.get() + 1);
                            continue;
                        }
                    }
                } else {
                    match fs.read_field(&key).await {
                        Ok(data) => data.len() as u64,
                        Err(_) => {
                            failed_reads.set(failed_reads.get() + 1);
                            continue;
                        }
                    }
                };
                let now = sim2.now();
                rec.record(0, p, i as u32, EventKind::IoEnd, now, done_bytes);
                if pacing == Pacing::Paced {
                    tardiness
                        .borrow_mut()
                        .push(now.as_nanos().saturating_sub(e.t_ns));
                }
            }
            drop(token);
        });
    }
    let end = sim.run().expect_quiescent();
    let lat = tardiness.borrow();
    let (mean, max) = if lat.is_empty() {
        (0.0, 0.0)
    } else {
        (
            lat.iter().sum::<u64>() as f64 / lat.len() as f64 / 1e6,
            *lat.iter().max().unwrap() as f64 / 1e6,
        )
    };
    let resilience = ResilienceCounters::from_report(
        d.resilience().report(),
        failed_writes.get(),
        failed_reads.get(),
    );
    let write_events = write_rec.take();
    let read_events = read_rec.take();
    let outcome = ReplayOutcome {
        stats: ReplayStats {
            writes: phase_stats(&write_events, false),
            reads: phase_stats(&read_events, false),
            mean_tardiness_ms: mean,
            max_tardiness_ms: max,
            end_secs: end.as_secs_f64(),
            resilience,
        },
        write_events,
        read_events,
    };
    (outcome, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fieldio::FieldIoMode;

    const MIB: u64 = 1024 * 1024;

    fn small_trace() -> Trace {
        Trace::synthesize_operational(8, 2, 6, MIB, SimDuration::from_millis(60))
    }

    #[test]
    fn synthesis_shape() {
        let t = small_trace();
        // 8 procs x 2 steps x 6 fields x (write + read).
        assert_eq!(t.len(), 8 * 2 * 6 * 2);
        assert_eq!(t.process_count(), 8);
        assert_eq!(t.total_write_bytes(), 8 * 2 * 6 * MIB);
        // Sorted by schedule.
        assert!(t.entries.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        // Reads trail their writes by one step interval.
        let w = t.entries.iter().find(|e| e.write).unwrap();
        let r = t
            .entries
            .iter()
            .find(|e| !e.write && e.key == w.key)
            .unwrap();
        assert_eq!(r.t_ns - w.t_ns, 60_000_000);
    }

    #[test]
    fn csv_roundtrip() {
        let t = small_trace();
        let parsed = Trace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed, t);
        assert!(Trace::from_csv("t_ns,process,op,bytes,key\nbogus").is_err());
        assert!(Trace::from_csv("t_ns,process,op,bytes,key\n1,2,x,3,class=od").is_err());
    }

    #[test]
    fn from_csv_rejects_unsorted_timestamps_naming_the_line() {
        // Regression: an out-of-order line used to be accepted silently,
        // and replay would run the schedule in file order anyway.
        let csv = "t_ns,process,op,bytes,key\n\
                   100,0,w,8,class=od\n\
                   50,0,w,8,class=od\n";
        let err = Trace::from_csv(csv).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn from_csv_densifies_sparse_process_ids() {
        // Regression: processes {2, 7} used to parse as-is, making
        // process_count() report 8 and replay spawn 6 idle tasks.
        let csv = "t_ns,process,op,bytes,key\n\
                   0,7,w,8,class=od\n\
                   10,2,w,8,class=od\n\
                   20,7,r,8,class=od\n";
        let t = Trace::from_csv(csv).unwrap();
        assert_eq!(t.process_count(), 2);
        let procs: Vec<u32> = t.entries.iter().map(|e| e.process).collect();
        assert_eq!(procs, [1, 0, 1], "order-preserving dense renumbering");
        // Already-dense traces are left untouched.
        let dense = small_trace();
        assert_eq!(Trace::from_csv(&dense.to_csv()).unwrap(), dense);
    }

    #[test]
    fn traced_replay_covers_the_stack_and_is_deterministic() {
        use crate::obs::{chrome_trace_json, json_is_wellformed, validate_spans};
        let t = Trace::synthesize_operational(4, 1, 2, 64 * 1024, SimDuration::from_millis(10));
        let run = || {
            replay_traced(
                ClusterSpec::tcp(1, 1),
                FieldIoConfig::builder()
                    .mode(FieldIoMode::NoContainers)
                    .build(),
                &t,
                Pacing::AsFast,
                None,
            )
        };
        let a = run();
        // The span stream is structurally sound and covers every layer
        // the issue names: executor, net, media, objstore, client.
        let summary = validate_spans(&a.spans).expect("well-formed span stream");
        assert_eq!(summary.unclosed, 0, "quiescent run must close all spans");
        assert!(summary.spans > 0);
        for cat in ["executor", "net", "media", "objstore", "client"] {
            assert!(
                summary.categories.iter().any(|c| c == cat),
                "missing category {cat}: {:?}",
                summary.categories
            );
        }
        // Metrics absorbed the per-layer tallies.
        let lookup = |name: &str| a.metrics.counter(name).unwrap_or(0);
        assert!(lookup("client.array_write.ops") > 0);
        assert!(lookup("media.e0.bytes_written") > 0);
        assert!(lookup("objstore.kv_updates") > 0 || lookup("objstore.array_updates") > 0);
        // Byte-identical determinism of every export.
        let b = run();
        assert_eq!(a.spans, b.spans);
        let (ja, jb) = (chrome_trace_json(&a.spans), chrome_trace_json(&b.spans));
        assert_eq!(ja, jb);
        assert!(json_is_wellformed(&ja));
        assert_eq!(a.metrics.to_csv(), b.metrics.to_csv());
        // Tracing must not change the modelled outcome.
        let plain = replay(
            ClusterSpec::tcp(1, 1),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::AsFast,
        );
        assert_eq!(plain.end_secs.to_bits(), a.outcome.stats.end_secs.to_bits());
    }

    #[test]
    fn paced_replay_keeps_up_on_an_idle_cluster() {
        let r = replay(
            ClusterSpec::tcp(1, 2),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &small_trace(),
            Pacing::Paced,
        );
        assert_eq!(r.writes.io_count, 96);
        assert_eq!(r.reads.io_count, 96);
        // A lightly loaded cluster finishes each op well within a step.
        assert!(
            r.mean_tardiness_ms < 20.0,
            "mean tardiness {} ms",
            r.mean_tardiness_ms
        );
        // Paced runs take at least the schedule length.
        assert!(r.end_secs >= 0.12, "{}", r.end_secs);
    }

    #[test]
    fn as_fast_replay_beats_the_schedule() {
        let t = small_trace();
        let fast = replay(
            ClusterSpec::tcp(1, 2),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::AsFast,
        );
        let paced = replay(
            ClusterSpec::tcp(1, 2),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::Paced,
        );
        assert!(
            fast.end_secs < paced.end_secs,
            "as-fast {} vs paced {}",
            fast.end_secs,
            paced.end_secs
        );
        assert_eq!(fast.writes.total_bytes, paced.writes.total_bytes);
    }

    #[test]
    fn overloaded_schedule_shows_tardiness() {
        // The same volume crammed into 100x less time on a single engine
        // cluster cannot keep up.
        let t = Trace::synthesize_operational(16, 2, 12, MIB, SimDuration::from_micros(600));
        let mut spec = ClusterSpec::tcp(1, 2);
        spec.engines_per_node = 1;
        let r = replay(
            spec,
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::Paced,
        );
        assert!(
            r.max_tardiness_ms > 1.0,
            "an overloaded schedule must fall behind: max {} ms",
            r.max_tardiness_ms
        );
    }

    #[test]
    fn faulted_replay_counts_failures_instead_of_panicking() {
        use daosim_cluster::FaultPlan;
        // Fail-fast policy (the default), an engine killed mid-trace and
        // never rebuilt: operations placed on it must fail, and those
        // failures must be *counted*, not panicked on.
        let t = small_trace();
        let plan = FaultPlan::new().kill(SimDuration::from_millis(5), 0);
        let out = replay_detailed(
            ClusterSpec::tcp(1, 2),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::Paced,
            Some(&plan),
        );
        let r = out.stats.resilience;
        assert_eq!(r.faults_injected, 1);
        assert!(
            r.failed_writes + r.failed_reads > 0,
            "a dead, never-rebuilt engine must fail some ops: {r:?}"
        );
        // Failed ops leave IoStart without IoEnd.
        let started = out
            .write_events
            .iter()
            .filter(|e| e.kind == EventKind::IoStart)
            .count();
        let ended = out
            .write_events
            .iter()
            .filter(|e| e.kind == EventKind::IoEnd)
            .count();
        assert_eq!(started - ended, r.failed_writes as usize);
    }

    #[test]
    fn windowed_replay_completes_all_ops_no_slower() {
        let t = small_trace();
        let seq = replay(
            ClusterSpec::tcp(1, 2),
            FieldIoConfig::builder()
                .mode(FieldIoMode::NoContainers)
                .build(),
            &t,
            Pacing::AsFast,
        );
        let cfg = FieldIoConfig::builder()
            .mode(FieldIoMode::NoContainers)
            .window(8)
            .build();
        let pip = replay(ClusterSpec::tcp(1, 2), cfg.clone(), &t, Pacing::AsFast);
        assert_eq!(pip.writes.io_count, seq.writes.io_count);
        assert_eq!(pip.reads.io_count, seq.reads.io_count);
        assert_eq!(pip.writes.total_bytes, seq.writes.total_bytes);
        assert!(
            pip.end_secs <= seq.end_secs,
            "pipelined {} vs sequential {}",
            pip.end_secs,
            seq.end_secs
        );
        // Windowed replays stay deterministic.
        let again = replay(ClusterSpec::tcp(1, 2), cfg, &t, Pacing::AsFast);
        assert_eq!(pip.end_secs.to_bits(), again.end_secs.to_bits());
    }

    #[test]
    fn replay_is_deterministic() {
        let t = small_trace();
        let a = replay(
            ClusterSpec::tcp(1, 1),
            FieldIoConfig::default(),
            &t,
            Pacing::Paced,
        );
        let b = replay(
            ClusterSpec::tcp(1, 1),
            FieldIoConfig::default(),
            &t,
            Pacing::Paced,
        );
        assert_eq!(a.end_secs.to_bits(), b.end_secs.to_bits());
        assert_eq!(a.mean_tardiness_ms.to_bits(), b.mean_tardiness_ms.to_bits());
    }
}
