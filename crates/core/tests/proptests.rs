//! Property-based tests of keys, index entries and metric definitions.

use daosim_core::fieldio::IndexEntry;
use daosim_core::key::{FieldKey, KeySchema};
use daosim_core::metrics::{
    global_timing_bandwidth, synchronous_bandwidth, total_parallel_io_wallclock, EventKind,
    EventRecord,
};
use daosim_objstore::{ObjectClass, Oid, Uuid};
use proptest::prelude::*;

fn name_str() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn value_str() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,10}"
}

fn any_class() -> impl Strategy<Value = ObjectClass> {
    prop_oneof![
        Just(ObjectClass::S1),
        Just(ObjectClass::S2),
        Just(ObjectClass::SX)
    ]
}

proptest! {
    #[test]
    fn key_canonical_is_insertion_order_independent(
        pairs in proptest::collection::vec((name_str(), value_str()), 1..10)
    ) {
        let forward = FieldKey::from_pairs(pairs.clone());
        let mut reversed = FieldKey::new();
        for (k, v) in pairs.iter().rev() {
            // First-set wins under reversal iff duplicates exist; rebuild
            // with the same last-wins semantics by replaying forward after.
            reversed.set(k.clone(), v.clone());
        }
        for (k, v) in &pairs {
            reversed.set(k.clone(), v.clone());
        }
        prop_assert_eq!(forward.canonical(), reversed.canonical());
    }

    #[test]
    fn split_partitions_key_exactly(
        pairs in proptest::collection::vec((name_str(), value_str()), 1..10),
        msk_names in proptest::collection::vec(name_str(), 0..5),
    ) {
        let key = FieldKey::from_pairs(pairs);
        let schema = KeySchema::new(msk_names);
        let (msk, lsk) = key.split(&schema);
        // Every pair lands in exactly one half, and recombination is
        // loss-free.
        let rebuilt: std::collections::BTreeSet<String> = msk
            .canonical()
            .split(',')
            .chain(lsk.canonical().split(','))
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        let original: std::collections::BTreeSet<String> = key
            .canonical()
            .split(',')
            .map(String::from)
            .collect();
        prop_assert_eq!(rebuilt, original);
    }

    #[test]
    fn index_entry_roundtrips(
        name in proptest::collection::vec(any::<u8>(), 0..40),
        hi in any::<u32>(), lo in any::<u64>(),
        class in any_class(),
        len in any::<u64>(),
    ) {
        let entry = IndexEntry {
            store_cont: Uuid::from_name(&name),
            oid: Oid::generate(hi, lo, class),
            len,
        };
        let encoded = entry.encode();
        prop_assert_eq!(IndexEntry::decode(&encoded), Some(entry));
        // Truncations never decode.
        for cut in 0..encoded.len() {
            prop_assert_eq!(IndexEntry::decode(&encoded[..cut]), None);
        }
    }
}

// ---------------------------------------------------------------------------
// Metric invariants over synthesised event sets
// ---------------------------------------------------------------------------

fn phase_events(
    spans: Vec<(u64, u64, u64)>, // (start_ns, dur_ns, bytes) per process
) -> Vec<EventRecord> {
    let mut out = Vec::new();
    for (p, (start, dur, bytes)) in spans.into_iter().enumerate() {
        out.push(EventRecord {
            node: 0,
            process: p as u32,
            iteration: 0,
            kind: EventKind::IoStart,
            t_ns: start,
            bytes: 0,
        });
        out.push(EventRecord {
            node: 0,
            process: p as u32,
            iteration: 0,
            kind: EventKind::IoEnd,
            t_ns: start + dur.max(1),
            bytes,
        });
    }
    out
}

proptest! {
    #[test]
    fn global_bandwidth_matches_definition(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..1_000_000), 1..20)
    ) {
        let events = phase_events(spans.clone());
        let bw = global_timing_bandwidth(&events).unwrap();
        let total: u64 = spans.iter().map(|s| s.2).sum();
        let start = spans.iter().map(|s| s.0).min().unwrap();
        let end = spans.iter().map(|s| s.0 + s.1.max(1)).max().unwrap();
        let expect = total as f64 / (1u64 << 30) as f64 / ((end - start) as f64 / 1e9);
        prop_assert!((bw - expect).abs() <= expect * 1e-9);
    }

    #[test]
    fn stretching_the_window_never_raises_global_bandwidth(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..1_000_000), 1..20),
        stretch in 1u64..100_000,
    ) {
        let base = phase_events(spans.clone());
        // Add an idle straggler performing a zero-byte I/O much later.
        let mut stretched = base.clone();
        let last = base.iter().map(|e| e.t_ns).max().unwrap();
        stretched.push(EventRecord {
            node: 0, process: 999, iteration: 0,
            kind: EventKind::IoStart, t_ns: last + stretch, bytes: 0,
        });
        stretched.push(EventRecord {
            node: 0, process: 999, iteration: 0,
            kind: EventKind::IoEnd, t_ns: last + stretch + 1, bytes: 0,
        });
        let a = global_timing_bandwidth(&base).unwrap();
        let b = global_timing_bandwidth(&stretched).unwrap();
        prop_assert!(b <= a * (1.0 + 1e-12), "stretched {b} > base {a}");
    }

    #[test]
    fn synchronous_bandwidth_equals_global_for_single_iteration(
        spans in proptest::collection::vec((0u64..100, 1u64..10_000, 1u64..1_000_000), 1..10)
    ) {
        // One synchronised iteration: Eq.1 with n=1 degenerates to Eq.2.
        let events = phase_events(spans);
        let sync = synchronous_bandwidth(&events).unwrap();
        let global = global_timing_bandwidth(&events).unwrap();
        prop_assert!((sync - global).abs() <= global * 1e-12);
    }

    #[test]
    fn wallclock_nonnegative_and_covers_all_spans(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..100), 1..20)
    ) {
        let events = phase_events(spans.clone());
        let wall = total_parallel_io_wallclock(&events).unwrap().as_nanos();
        for (start, dur, _) in &spans {
            prop_assert!(wall >= *dur.max(&1), "wall {wall} shorter than span");
            let _ = start;
        }
    }
}
