//! Property-based tests of keys, index entries, metric definitions,
//! trace CSV round-trips, timeline builders and span-tree invariants.

use daosim_core::fieldio::IndexEntry;
use daosim_core::key::{FieldKey, KeySchema};
use daosim_core::metrics::{
    anchored_bandwidth_timeline, bandwidth_timeline, events_to_csv, global_timing_bandwidth,
    synchronous_bandwidth, total_parallel_io_wallclock, EventKind, EventRecord,
};
use daosim_core::obs::{chrome_trace_json, json_is_wellformed, validate_spans, Obs, SpanEvent};
use daosim_core::trace::{Trace, TraceEntry};
use daosim_kernel::{SimDuration, SimTime};
use daosim_objstore::{ObjectClass, Oid, Uuid};
use proptest::prelude::*;

fn name_str() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn value_str() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,10}"
}

fn any_class() -> impl Strategy<Value = ObjectClass> {
    prop_oneof![
        Just(ObjectClass::S1),
        Just(ObjectClass::S2),
        Just(ObjectClass::SX)
    ]
}

proptest! {
    #[test]
    fn key_canonical_is_insertion_order_independent(
        pairs in proptest::collection::vec((name_str(), value_str()), 1..10)
    ) {
        let forward = FieldKey::from_pairs(pairs.clone());
        let mut reversed = FieldKey::new();
        for (k, v) in pairs.iter().rev() {
            // First-set wins under reversal iff duplicates exist; rebuild
            // with the same last-wins semantics by replaying forward after.
            reversed.set(k.clone(), v.clone());
        }
        for (k, v) in &pairs {
            reversed.set(k.clone(), v.clone());
        }
        prop_assert_eq!(forward.canonical(), reversed.canonical());
    }

    #[test]
    fn split_partitions_key_exactly(
        pairs in proptest::collection::vec((name_str(), value_str()), 1..10),
        msk_names in proptest::collection::vec(name_str(), 0..5),
    ) {
        let key = FieldKey::from_pairs(pairs);
        let schema = KeySchema::new(msk_names);
        let (msk, lsk) = key.split(&schema);
        // Every pair lands in exactly one half, and recombination is
        // loss-free.
        let rebuilt: std::collections::BTreeSet<String> = msk
            .canonical()
            .split(',')
            .chain(lsk.canonical().split(','))
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        let original: std::collections::BTreeSet<String> = key
            .canonical()
            .split(',')
            .map(String::from)
            .collect();
        prop_assert_eq!(rebuilt, original);
    }

    #[test]
    fn index_entry_roundtrips(
        name in proptest::collection::vec(any::<u8>(), 0..40),
        hi in any::<u32>(), lo in any::<u64>(),
        class in any_class(),
        len in any::<u64>(),
    ) {
        let entry = IndexEntry {
            store_cont: Uuid::from_name(&name),
            oid: Oid::generate(hi, lo, class),
            len,
        };
        let encoded = entry.encode();
        prop_assert_eq!(IndexEntry::decode(&encoded), Some(entry));
        // Truncations never decode.
        for cut in 0..encoded.len() {
            prop_assert_eq!(IndexEntry::decode(&encoded[..cut]), None);
        }
    }
}

// ---------------------------------------------------------------------------
// Metric invariants over synthesised event sets
// ---------------------------------------------------------------------------

fn phase_events(
    spans: Vec<(u64, u64, u64)>, // (start_ns, dur_ns, bytes) per process
) -> Vec<EventRecord> {
    let mut out = Vec::new();
    for (p, (start, dur, bytes)) in spans.into_iter().enumerate() {
        out.push(EventRecord {
            node: 0,
            process: p as u32,
            iteration: 0,
            kind: EventKind::IoStart,
            t_ns: start,
            bytes: 0,
        });
        out.push(EventRecord {
            node: 0,
            process: p as u32,
            iteration: 0,
            kind: EventKind::IoEnd,
            t_ns: start + dur.max(1),
            bytes,
        });
    }
    out
}

proptest! {
    #[test]
    fn global_bandwidth_matches_definition(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..1_000_000), 1..20)
    ) {
        let events = phase_events(spans.clone());
        let bw = global_timing_bandwidth(&events).unwrap();
        let total: u64 = spans.iter().map(|s| s.2).sum();
        let start = spans.iter().map(|s| s.0).min().unwrap();
        let end = spans.iter().map(|s| s.0 + s.1.max(1)).max().unwrap();
        let expect = total as f64 / (1u64 << 30) as f64 / ((end - start) as f64 / 1e9);
        prop_assert!((bw - expect).abs() <= expect * 1e-9);
    }

    #[test]
    fn stretching_the_window_never_raises_global_bandwidth(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..1_000_000), 1..20),
        stretch in 1u64..100_000,
    ) {
        let base = phase_events(spans.clone());
        // Add an idle straggler performing a zero-byte I/O much later.
        let mut stretched = base.clone();
        let last = base.iter().map(|e| e.t_ns).max().unwrap();
        stretched.push(EventRecord {
            node: 0, process: 999, iteration: 0,
            kind: EventKind::IoStart, t_ns: last + stretch, bytes: 0,
        });
        stretched.push(EventRecord {
            node: 0, process: 999, iteration: 0,
            kind: EventKind::IoEnd, t_ns: last + stretch + 1, bytes: 0,
        });
        let a = global_timing_bandwidth(&base).unwrap();
        let b = global_timing_bandwidth(&stretched).unwrap();
        prop_assert!(b <= a * (1.0 + 1e-12), "stretched {b} > base {a}");
    }

    #[test]
    fn synchronous_bandwidth_equals_global_for_single_iteration(
        spans in proptest::collection::vec((0u64..100, 1u64..10_000, 1u64..1_000_000), 1..10)
    ) {
        // One synchronised iteration: Eq.1 with n=1 degenerates to Eq.2.
        let events = phase_events(spans);
        let sync = synchronous_bandwidth(&events).unwrap();
        let global = global_timing_bandwidth(&events).unwrap();
        prop_assert!((sync - global).abs() <= global * 1e-12);
    }

    #[test]
    fn wallclock_nonnegative_and_covers_all_spans(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..100), 1..20)
    ) {
        let events = phase_events(spans.clone());
        let wall = total_parallel_io_wallclock(&events).unwrap().as_nanos();
        for (start, dur, _) in &spans {
            prop_assert!(wall >= *dur.max(&1), "wall {wall} shorter than span");
            let _ = start;
        }
    }
}

// ---------------------------------------------------------------------------
// Trace and event CSV round-trips
// ---------------------------------------------------------------------------

/// Traces `from_csv` accepts verbatim: strictly increasing timestamps
/// (so any line swap is detectably out of order) and dense process ids
/// (so the parser's renumbering is the identity).
fn valid_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        (
            1u64..50_000,
            0u32..6,
            any::<bool>(),
            1u64..(1 << 20),
            0u32..50,
        ),
        1..30,
    )
    .prop_map(|rows| {
        let mut ids: Vec<u32> = rows.iter().map(|r| r.1).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut t = 0u64;
        let entries = rows
            .into_iter()
            .map(|(dt, p, write, bytes, step)| {
                t += dt;
                TraceEntry {
                    t_ns: t,
                    process: ids.iter().position(|&i| i == p).unwrap() as u32,
                    write,
                    key: FieldKey::from_pairs([
                        ("class", "od".to_string()),
                        ("step", step.to_string()),
                    ])
                    .canonical(),
                    bytes,
                }
            })
            .collect();
        Trace { entries }
    })
}

proptest! {
    #[test]
    fn trace_csv_roundtrips(t in valid_trace()) {
        let parsed = Trace::from_csv(&t.to_csv());
        prop_assert_eq!(parsed, Ok(t));
    }

    #[test]
    fn trace_csv_rejects_any_adjacent_line_swap(t in valid_trace(), pick in 0usize..1_000) {
        // Swapping any two adjacent data lines breaks the sort order
        // (timestamps are strictly increasing) and must be rejected with
        // an error naming the now-backwards line.
        if t.entries.len() >= 2 {
            let csv = t.to_csv();
            let mut lines: Vec<&str> = csv.lines().collect();
            let i = 1 + pick % (lines.len() - 2); // data lines are 1..len-1
            lines.swap(i, i + 1);
            let err = Trace::from_csv(&lines.join("\n")).unwrap_err();
            prop_assert!(
                err.contains(&format!("line {}", i + 2)) && err.contains("goes backwards"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn trace_csv_densifies_any_process_relabeling(
        t in valid_trace(),
        offsets in proptest::collection::vec(1u32..100, 6),
    ) {
        // Spreading process ids out (order-preserving) must parse back to
        // the same dense trace.
        let mut sparse = t.clone();
        for e in &mut sparse.entries {
            // Strictly increasing cumulative offsets keep relative order.
            let shift: u32 = offsets.iter().take(e.process as usize + 1).sum();
            e.process += shift;
        }
        prop_assert_eq!(Trace::from_csv(&sparse.to_csv()), Ok(t));
    }

    #[test]
    fn events_csv_has_one_parseable_row_per_event(
        spans in proptest::collection::vec((0u64..10_000, 1u64..10_000, 1u64..1_000_000), 1..20)
    ) {
        let events = phase_events(spans);
        let csv = events_to_csv(&events);
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), events.len() + 1);
        prop_assert_eq!(lines[0], "node,process,iteration,event,t_ns,bytes");
        for (line, e) in lines[1..].iter().zip(&events) {
            let cols: Vec<&str> = line.split(',').collect();
            prop_assert_eq!(cols.len(), 6);
            prop_assert_eq!(cols[0].parse::<u16>(), Ok(e.node));
            prop_assert_eq!(cols[1].parse::<u32>(), Ok(e.process));
            prop_assert_eq!(cols[2].parse::<u32>(), Ok(e.iteration));
            let kind = format!("{:?}", e.kind);
            prop_assert_eq!(cols[3], kind.as_str());
            prop_assert_eq!(cols[4].parse::<u64>(), Ok(e.t_ns));
            prop_assert_eq!(cols[5].parse::<u64>(), Ok(e.bytes));
        }
    }
}

// ---------------------------------------------------------------------------
// Timeline builders under adversarial event orderings
// ---------------------------------------------------------------------------

/// Unconstrained event soups: starts and ends in any order, including
/// completions before the first start (carry-over from an earlier
/// phase) — the shape that underflowed `bandwidth_timeline` before it
/// anchored at the minimum over all events.
fn adversarial_events() -> impl Strategy<Value = Vec<EventRecord>> {
    proptest::collection::vec((any::<bool>(), 0u64..2_000_000_000, 0u64..1_000_000), 1..40)
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (is_end, t_ns, bytes))| EventRecord {
                    node: 0,
                    process: i as u32,
                    iteration: 0,
                    kind: if is_end {
                        EventKind::IoEnd
                    } else {
                        EventKind::IoStart
                    },
                    t_ns,
                    bytes,
                })
                .collect()
        })
}

proptest! {
    #[test]
    fn bandwidth_timeline_never_panics_and_conserves_bytes(
        events in adversarial_events(),
        bucket_ms in 1u64..500,
    ) {
        let bucket = SimDuration::from_millis(bucket_ms);
        let timeline = bandwidth_timeline(&events, bucket);
        let total: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::IoEnd)
            .map(|e| e.bytes)
            .sum();
        if timeline.is_empty() {
            prop_assert!(total_parallel_io_wallclock(&events).is_none());
        } else {
            prop_assert_eq!(timeline.iter().map(|b| b.bytes).sum::<u64>(), total);
            for w in timeline.windows(2) {
                prop_assert_eq!(w[1].t_ns - w[0].t_ns, bucket.as_nanos());
            }
            // Every completion is covered by the bucket range.
            let last = timeline.last().unwrap().t_ns;
            let max_end = events
                .iter()
                .filter(|e| e.kind == EventKind::IoEnd)
                .map(|e| e.t_ns)
                .max()
                .unwrap();
            prop_assert!(timeline[0].t_ns <= max_end && max_end < last + bucket.as_nanos());
        }
    }

    #[test]
    fn anchored_timeline_never_panics_and_conserves_bytes(
        events in adversarial_events(),
        bucket_ms in 1u64..500,
        end_ms in 0u64..3_000,
    ) {
        let bucket = SimDuration::from_millis(bucket_ms);
        let end = SimTime::from_nanos(end_ms * 1_000_000);
        let timeline = anchored_bandwidth_timeline(&events, bucket, end);
        let total: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::IoEnd)
            .map(|e| e.bytes)
            .sum();
        // Fixed shape regardless of the events: buckets tile [0, end).
        let step = bucket.as_nanos();
        prop_assert_eq!(timeline.len() as u64, end.as_nanos().div_ceil(step).max(1));
        for (i, b) in timeline.iter().enumerate() {
            prop_assert_eq!(b.t_ns, i as u64 * step);
        }
        // Completions past `end` clamp into the last bucket, so bytes
        // are always conserved.
        prop_assert_eq!(timeline.iter().map(|b| b.bytes).sum::<u64>(), total);
    }
}

// ---------------------------------------------------------------------------
// Span-tree well-formedness
// ---------------------------------------------------------------------------

/// Drives an [`Obs`] with a random but discipline-respecting program:
/// stacked begins, ends of the current top, self-closing leaves and
/// instants, then unwinds whatever remains open.
fn run_span_program(cmds: &[u8]) -> Vec<SpanEvent> {
    let obs = Obs::default();
    obs.set_enabled(true);
    let mut stack: Vec<u64> = Vec::new();
    for &c in cmds {
        match c % 5 {
            0 | 1 => {
                if let Some(id) = obs.span_begin("stacked", "work") {
                    stack.push(id);
                }
            }
            2 => {
                if let Some(id) = stack.pop() {
                    obs.span_end(id);
                }
            }
            3 => {
                if let Some(id) = obs.span_begin_leaf("leaf", "probe") {
                    obs.span_end(id);
                }
            }
            _ => obs.instant("mark", "tick"),
        }
    }
    while let Some(id) = stack.pop() {
        obs.span_end(id);
    }
    obs.take_events()
}

proptest! {
    #[test]
    fn random_span_programs_validate_clean(
        cmds in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let events = run_span_program(&cmds);
        let begins = events
            .iter()
            .filter(|e| matches!(e, SpanEvent::Begin { .. }))
            .count();
        let summary = validate_spans(&events)?;
        prop_assert_eq!(summary.unclosed, 0);
        prop_assert_eq!(summary.spans, begins);
        prop_assert!(json_is_wellformed(&chrome_trace_json(&events)));
    }

    #[test]
    fn mutated_span_streams_never_validate_clean(
        cmds in proptest::collection::vec(any::<u8>(), 1..200),
        pick in 0usize..1_000,
    ) {
        let events = run_span_program(&cmds);
        let ends: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, SpanEvent::End { .. }))
            .map(|(i, _)| i)
            .collect();
        if ends.is_empty() {
            return Ok(());
        }
        let at = ends[pick % ends.len()];
        // Dropping an End leaves a span open (or orphans a child inside a
        // closed parent) — validation must either error or count it.
        let mut dropped = events.clone();
        dropped.remove(at);
        match validate_spans(&dropped) {
            Ok(s) => prop_assert!(s.unclosed >= 1, "dropped End went unnoticed"),
            Err(_) => {}
        }
        // Duplicating an End double-closes a span — always an error.
        let mut doubled = events.clone();
        doubled.insert(at, events[at].clone());
        prop_assert!(validate_spans(&doubled).is_err(), "double End accepted");
    }
}
