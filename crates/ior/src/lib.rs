//! # daosim-ior — IOR in segments mode over the simulated cluster
//!
//! Reimplements the IOR configuration the paper uses (§5.1): MPI-style
//! fully synchronised processes, DAOS Array backend, *file per process*
//! (`-F`), block size = transfer size (`-b = -t`), `-s` segments and one
//! repetition — so each process performs **one** object create/open, one
//! transfer of `t × s` bytes and one close per phase, bracketed by
//! barriers:
//!
//! 1. initial barrier, 2. pre-I/O barrier, 3. object create/open,
//! 4. transfer, 5. object close, 6. post-I/O barrier, 7. logging,
//! 8. final barrier.
//!
//! The reported figure is the **synchronous bandwidth** (Eq. 1): total
//! bytes over the parallel wall-clock of the synchronised iteration.

use std::rc::Rc;

use serde::Serialize;

use daosim_cluster::{ClusterSpec, Deployment, SimClient};
use daosim_core::metrics::{phase_stats, EventKind, PhaseStats, Recorder};
use daosim_core::workload::payload;
use daosim_dfs::{DfsConfig, DfsError, DfsHandle};
use daosim_kernel::sync::Barrier;
use daosim_kernel::{Sim, SpanEvent};
use daosim_objstore::prelude::{
    DaosApi, EventQueue, ObjectClass, Oid, OidAllocator, OpOutput, Uuid,
};

/// File layout, IOR's `-F` axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FileMode {
    /// `-F`: one object per process (what the paper runs).
    #[default]
    FilePerProcess,
    /// No `-F`: one shared object; each rank owns a disjoint extent.
    SharedFile,
}

/// Client interface, IOR's `-a` axis: the two DAOS-native backends the
/// interface studies compare.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Api {
    /// `-a DAOS`: raw Array objects addressed by oid, no namespace.
    #[default]
    Daos,
    /// `-a DFS`: testfiles resolved by path through the `daosim-dfs`
    /// namespace — every open walks dirents, every create/close updates
    /// them, on top of the same Array data path.
    Dfs,
}

/// IOR invocation parameters (the subset the paper sweeps).
#[derive(Clone, Copy, Debug)]
pub struct IorParams {
    /// `-t` and `-b`: bytes per data part.
    pub transfer_bytes: u64,
    /// `-s`: data parts per process (one transfer carries all of them).
    pub segments: u32,
    /// Processes per client node.
    pub procs_per_node: u32,
    /// Object class for the per-process Arrays (paper: `S1`).
    pub class: ObjectClass,
    /// `-i`: repetitions of the whole write/read cycle (paper: 1).
    /// Synchronous bandwidth averages over iterations per Eq. 1.
    pub iterations: u32,
    /// File-per-process (`-F`, the paper's mode) or shared-file layout.
    pub file_mode: FileMode,
    /// Async in-flight window. At 1 each process issues a single blocking
    /// transfer of `t × s` bytes (the paper's synchronous setup). Above 1
    /// the transfer is split into `segments` parts of `transfer_bytes`
    /// each, launched through a `daos_eq`-style event queue with at most
    /// `inflight` operations outstanding.
    pub inflight: u32,
    /// `-a`: raw DAOS Arrays, or DFS paths layered over them.
    pub api: Api,
}

impl IorParams {
    /// The paper's standard IOR setup: 1 MiB × 100 segments, S1.
    pub fn paper_default(procs_per_node: u32) -> Self {
        IorParams {
            transfer_bytes: 1024 * 1024,
            segments: 100,
            procs_per_node,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: FileMode::FilePerProcess,
            api: Api::Daos,
            inflight: 1,
        }
    }

    pub fn bytes_per_proc(&self) -> u64 {
        self.transfer_bytes * self.segments as u64
    }
}

/// Result of one IOR run (write phase then read phase).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct IorResult {
    pub write: PhaseStats,
    pub read: PhaseStats,
}

impl IorResult {
    pub fn write_bw(&self) -> f64 {
        self.write.synchronous_bw_gib.unwrap_or(0.0)
    }

    pub fn read_bw(&self) -> f64 {
        self.read.synchronous_bw_gib.unwrap_or(0.0)
    }
}

/// Runs IOR segments mode on a fresh deployment of `spec`.
pub fn run_ior(spec: ClusterSpec, params: IorParams) -> IorResult {
    run_ior_on(&Sim::new(), spec, params)
}

/// Like [`run_ior`], with span tracing enabled; returns the result plus
/// the recorded span event stream (export it with
/// `daosim_core::obs::chrome_trace_json`). Tracing is sim-time-only, so
/// the bandwidth figures are identical to an untraced run.
pub fn run_ior_traced(spec: ClusterSpec, params: IorParams) -> (IorResult, Vec<SpanEvent>) {
    let sim = Sim::new();
    sim.obs().set_enabled(true);
    let result = run_ior_on(&sim, spec, params);
    (result, sim.obs().take_events())
}

/// Like [`run_ior`], on a caller-supplied [`Sim`] — the hook for running
/// IOR under a perturbed [`daosim_kernel::SchedPolicy`] or alongside other
/// workloads sharing the same virtual clock.
pub fn run_ior_on(sim: &Sim, spec: ClusterSpec, params: IorParams) -> IorResult {
    let sim = sim.clone();
    let d = Deployment::new(&sim, spec);
    let procs = spec.client_nodes as u32 * params.procs_per_node;
    assert!(procs > 0);

    // The shared container stands in for IOR's working directory.
    let cont_uuid = Uuid::from_name(b"ior-testdir");
    let data = payload(params.bytes_per_proc(), 7);
    let write_rec = Recorder::new();
    let read_rec = Recorder::new();
    let barrier = Barrier::new(procs as usize);

    for p in 0..procs {
        let (d, barrier) = (Rc::clone(&d), barrier.clone());
        let (write_rec, read_rec) = (write_rec.clone(), read_rec.clone());
        let sim2 = sim.clone();
        let data = data.clone();
        sim.spawn(async move {
            let node = (p / params.procs_per_node) as u16;
            let rank = p % params.procs_per_node;
            let client = SimClient::for_process(&d, node, rank);
            let cont = client.cont_open_or_create(cont_uuid).await.unwrap();
            let mut alloc = OidAllocator::new(p + 1);
            let bytes = params.bytes_per_proc();
            // Rank offset within the shared object (SharedFile mode).
            let my_offset = match params.file_mode {
                FileMode::FilePerProcess => 0,
                FileMode::SharedFile => p as u64 * bytes,
            };

            if params.api == Api::Dfs {
                // `-a DFS`: every rank mounts the namespace (the
                // superblock insert race resolves to one winner) and
                // addresses its testfile by path under /ior, like the
                // IOR DFS backend's `--dfs.dir`. The data path is the
                // same Array machinery as `-a DAOS`; the delta under
                // measurement is purely dirent lookups and updates.
                let dfs = DfsHandle::mount_with(
                    client.clone(),
                    cont_uuid,
                    p + 1,
                    DfsConfig {
                        file_class: params.class,
                        ..DfsConfig::default()
                    },
                )
                .await
                .unwrap();
                match dfs.mkdir("/ior").await {
                    Ok(()) | Err(DfsError::Exists(_)) => {}
                    Err(e) => panic!("mkdir /ior: {e}"),
                }
                for iter in 0..params.iterations.max(1) {
                    let path = match params.file_mode {
                        FileMode::FilePerProcess => format!("/ior/testfile.{iter}.{p}"),
                        FileMode::SharedFile => format!("/ior/testfile.{iter}"),
                    };

                    // ---- write phase ----
                    barrier.wait().await; // initial barrier
                    barrier.wait().await; // pre-I/O barrier
                    write_rec.record(node, p, iter, EventKind::IoStart, sim2.now(), 0);
                    write_rec.record(node, p, iter, EventKind::OpenStart, sim2.now(), 0);
                    let mut file = match params.file_mode {
                        FileMode::FilePerProcess => dfs.create(&path).await.unwrap(),
                        FileMode::SharedFile => dfs.open_or_create(&path).await.unwrap(),
                    };
                    write_rec.record(node, p, iter, EventKind::OpenEnd, sim2.now(), 0);
                    write_rec.record(node, p, iter, EventKind::XferStart, sim2.now(), 0);
                    if params.inflight > 1 {
                        let mut w = dfs.writer(file, params.inflight);
                        let t = params.transfer_bytes as usize;
                        for s in 0..params.segments {
                            let chunk = data.slice(s as usize * t..(s as usize + 1) * t);
                            w.submit(my_offset + s as u64 * params.transfer_bytes, chunk)
                                .await
                                .unwrap();
                        }
                        file = w.finish().await.unwrap();
                    } else {
                        dfs.write(&mut file, my_offset, data.clone()).await.unwrap();
                    }
                    write_rec.record(node, p, iter, EventKind::XferEnd, sim2.now(), 0);
                    write_rec.record(node, p, iter, EventKind::CloseStart, sim2.now(), 0);
                    dfs.close(file).await.unwrap();
                    write_rec.record(node, p, iter, EventKind::CloseEnd, sim2.now(), 0);
                    write_rec.record(node, p, iter, EventKind::IoEnd, sim2.now(), bytes);
                    barrier.wait().await; // post-I/O barrier
                    barrier.wait().await; // final barrier

                    // ---- read phase ----
                    barrier.wait().await;
                    barrier.wait().await;
                    read_rec.record(node, p, iter, EventKind::IoStart, sim2.now(), 0);
                    read_rec.record(node, p, iter, EventKind::OpenStart, sim2.now(), 0);
                    let file = dfs.open(&path).await.unwrap();
                    read_rec.record(node, p, iter, EventKind::OpenEnd, sim2.now(), 0);
                    read_rec.record(node, p, iter, EventKind::XferStart, sim2.now(), 0);
                    if params.inflight > 1 {
                        // Pipelined reads ride the raw Array handle so the
                        // async window matches the `-a DAOS` path exactly.
                        let eq = EventQueue::new(client.clone());
                        let mut got_bytes = 0u64;
                        let mut harvest = |r: Result<OpOutput, _>| match r.unwrap() {
                            OpOutput::Data(b) => got_bytes += b.len() as u64,
                            other => panic!("array_read returned {other:?}"),
                        };
                        for s in 0..params.segments {
                            for (_, r) in eq.wait_capacity(params.inflight as usize).await {
                                harvest(r);
                            }
                            eq.array_read(
                                &cont,
                                file.array(),
                                my_offset + s as u64 * params.transfer_bytes,
                                params.transfer_bytes,
                            );
                        }
                        for (_, r) in eq.wait_all().await {
                            harvest(r);
                        }
                        assert_eq!(got_bytes, bytes, "short IOR read");
                    } else {
                        let got = dfs.read(&file, my_offset, bytes).await.unwrap();
                        assert_eq!(got.len() as u64, bytes, "short IOR read");
                    }
                    read_rec.record(node, p, iter, EventKind::XferEnd, sim2.now(), 0);
                    read_rec.record(node, p, iter, EventKind::CloseStart, sim2.now(), 0);
                    dfs.close(file).await.unwrap();
                    read_rec.record(node, p, iter, EventKind::CloseEnd, sim2.now(), 0);
                    read_rec.record(node, p, iter, EventKind::IoEnd, sim2.now(), bytes);
                    barrier.wait().await;
                    barrier.wait().await;
                }
                return;
            }

            for iter in 0..params.iterations.max(1) {
                // Fresh object per repetition: per-process, or one shared
                // object all ranks agree on by construction.
                let oid = match params.file_mode {
                    FileMode::FilePerProcess => alloc.next(params.class),
                    FileMode::SharedFile => Oid::generate(0xF11E, iter as u64, params.class),
                };

                // ---- write phase ----
                barrier.wait().await; // initial barrier
                barrier.wait().await; // pre-I/O barrier
                write_rec.record(node, p, iter, EventKind::IoStart, sim2.now(), 0);
                write_rec.record(node, p, iter, EventKind::OpenStart, sim2.now(), 0);
                let handle = match params.file_mode {
                    FileMode::FilePerProcess => client.array_create(&cont, oid).await.unwrap(),
                    // Shared file: ranks race to create-or-open the one
                    // object, as the IOR DAOS backend does without -F.
                    FileMode::SharedFile => client.array_open_or_create(&cont, oid).await.unwrap(),
                };
                write_rec.record(node, p, iter, EventKind::OpenEnd, sim2.now(), 0);
                write_rec.record(node, p, iter, EventKind::XferStart, sim2.now(), 0);
                if params.inflight > 1 {
                    // Async path: one event per segment, at most `inflight`
                    // outstanding (`daos_eq`-style pipelining).
                    let eq = EventQueue::new(client.clone());
                    let t = params.transfer_bytes as usize;
                    for s in 0..params.segments {
                        // One capacity-wait future per submission: parked
                        // until a completion opens a window slot, never
                        // re-polling in a check loop.
                        for (_, r) in eq.wait_capacity(params.inflight as usize).await {
                            r.unwrap();
                        }
                        let chunk = data.slice(s as usize * t..(s as usize + 1) * t);
                        eq.array_write(
                            &cont,
                            &handle,
                            my_offset + s as u64 * params.transfer_bytes,
                            chunk,
                        );
                    }
                    for (_, r) in eq.wait_all().await {
                        r.unwrap();
                    }
                } else {
                    client
                        .array_write(&cont, &handle, my_offset, data.clone())
                        .await
                        .unwrap();
                }
                write_rec.record(node, p, iter, EventKind::XferEnd, sim2.now(), 0);
                write_rec.record(node, p, iter, EventKind::CloseStart, sim2.now(), 0);
                client.array_close(&cont, handle).await.unwrap();
                write_rec.record(node, p, iter, EventKind::CloseEnd, sim2.now(), 0);
                write_rec.record(node, p, iter, EventKind::IoEnd, sim2.now(), bytes);
                barrier.wait().await; // post-I/O barrier
                barrier.wait().await; // final barrier

                // ---- read phase (same process set, same distribution) ----
                barrier.wait().await;
                barrier.wait().await;
                read_rec.record(node, p, iter, EventKind::IoStart, sim2.now(), 0);
                read_rec.record(node, p, iter, EventKind::OpenStart, sim2.now(), 0);
                let handle = client.array_open(&cont, oid).await.unwrap();
                read_rec.record(node, p, iter, EventKind::OpenEnd, sim2.now(), 0);
                read_rec.record(node, p, iter, EventKind::XferStart, sim2.now(), 0);
                if params.inflight > 1 {
                    let eq = EventQueue::new(client.clone());
                    let mut got_bytes = 0u64;
                    let mut harvest = |r: Result<OpOutput, _>| match r.unwrap() {
                        OpOutput::Data(b) => got_bytes += b.len() as u64,
                        other => panic!("array_read returned {other:?}"),
                    };
                    for s in 0..params.segments {
                        for (_, r) in eq.wait_capacity(params.inflight as usize).await {
                            harvest(r);
                        }
                        eq.array_read(
                            &cont,
                            &handle,
                            my_offset + s as u64 * params.transfer_bytes,
                            params.transfer_bytes,
                        );
                    }
                    for (_, r) in eq.wait_all().await {
                        harvest(r);
                    }
                    assert_eq!(got_bytes, bytes, "short IOR read");
                } else {
                    let got = client
                        .array_read(&cont, &handle, my_offset, bytes)
                        .await
                        .unwrap();
                    assert_eq!(got.len() as u64, bytes, "short IOR read");
                }
                read_rec.record(node, p, iter, EventKind::XferEnd, sim2.now(), 0);
                read_rec.record(node, p, iter, EventKind::CloseStart, sim2.now(), 0);
                client.array_close(&cont, handle).await.unwrap();
                read_rec.record(node, p, iter, EventKind::CloseEnd, sim2.now(), 0);
                read_rec.record(node, p, iter, EventKind::IoEnd, sim2.now(), bytes);
                barrier.wait().await;
                barrier.wait().await;
            }
        });
    }
    sim.run().expect_quiescent();

    IorResult {
        write: phase_stats(&write_rec.take(), true),
        read: phase_stats(&read_rec.take(), true),
    }
}

/// Runs `run_ior` over several process counts and returns the best write
/// and read synchronous bandwidths — the paper reports the best-performing
/// client process count per configuration.
pub fn best_over_ppn(spec: ClusterSpec, ppns: &[u32], base: IorParams) -> (f64, f64) {
    let mut best = (0.0f64, 0.0f64);
    for &ppn in ppns {
        let r = run_ior(
            spec,
            IorParams {
                procs_per_node: ppn,
                ..base
            },
        );
        best.0 = best.0.max(r.write_bw());
        best.1 = best.1.max(r.read_bw());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    fn small(spec: ClusterSpec, ppn: u32) -> IorResult {
        run_ior(
            spec,
            IorParams {
                transfer_bytes: MIB,
                segments: 10,
                procs_per_node: ppn,
                class: ObjectClass::S1,
                iterations: 1,
                file_mode: FileMode::FilePerProcess,
                api: Api::Daos,
                inflight: 1,
            },
        )
    }

    #[test]
    fn traced_run_matches_untraced_and_yields_spans() {
        let spec = ClusterSpec::tcp(1, 1);
        let params = IorParams {
            transfer_bytes: MIB,
            segments: 2,
            procs_per_node: 2,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: FileMode::FilePerProcess,
            api: Api::Daos,
            inflight: 1,
        };
        let plain = run_ior(spec, params);
        let (traced, spans) = run_ior_traced(spec, params);
        assert_eq!(plain.write_bw().to_bits(), traced.write_bw().to_bits());
        assert!(!spans.is_empty(), "tracing must record events");
    }

    #[test]
    fn reports_positive_synchronous_bandwidth() {
        let r = small(ClusterSpec::tcp(1, 1), 8);
        assert!(r.write_bw() > 0.5, "write {}", r.write_bw());
        assert!(r.read_bw() > 0.5, "read {}", r.read_bw());
        assert_eq!(r.write.io_count, 8);
        assert_eq!(r.write.total_bytes, 8 * 10 * MIB);
    }

    #[test]
    fn read_exceeds_write_as_in_table1() {
        let r = small(ClusterSpec::tcp(1, 2), 16);
        assert!(
            r.read_bw() > r.write_bw(),
            "read {} should beat write {}",
            r.read_bw(),
            r.write_bw()
        );
    }

    #[test]
    fn write_bandwidth_saturates_near_engine_limits() {
        // 2 engines ingest ~2.9 GiB/s each before host effects.
        let r = small(ClusterSpec::tcp(1, 2), 24);
        assert!(
            (3.0..7.0).contains(&r.write_bw()),
            "write {} outside expected band",
            r.write_bw()
        );
    }

    #[test]
    fn more_servers_scale_bandwidth() {
        let one = small(ClusterSpec::tcp(1, 2), 16);
        let two = small(ClusterSpec::tcp(2, 4), 16);
        assert!(
            two.write_bw() > one.write_bw() * 1.3,
            "2 servers {} vs 1 server {}",
            two.write_bw(),
            one.write_bw()
        );
    }

    #[test]
    fn determinism() {
        let a = small(ClusterSpec::tcp(1, 1), 4);
        let b = small(ClusterSpec::tcp(1, 1), 4);
        assert_eq!(a.write_bw(), b.write_bw());
        assert_eq!(a.read_bw(), b.read_bw());
    }

    #[test]
    fn multiple_iterations_average_per_eq1() {
        let r = run_ior(
            ClusterSpec::tcp(1, 1),
            IorParams {
                transfer_bytes: MIB,
                segments: 5,
                procs_per_node: 4,
                class: ObjectClass::S1,
                iterations: 3,
                file_mode: FileMode::FilePerProcess,
                api: Api::Daos,
                inflight: 1,
            },
        );
        assert_eq!(r.write.io_count, 12, "4 procs x 3 iterations");
        assert_eq!(r.write.total_bytes, 12 * 5 * MIB);
        assert!(r.write_bw() > 0.0);
        // A single-iteration run of the same shape gives a similar rate.
        let one = run_ior(
            ClusterSpec::tcp(1, 1),
            IorParams {
                transfer_bytes: MIB,
                segments: 5,
                procs_per_node: 4,
                class: ObjectClass::S1,
                iterations: 1,
                file_mode: FileMode::FilePerProcess,
                api: Api::Daos,
                inflight: 1,
            },
        );
        let ratio = r.write_bw() / one.write_bw();
        assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shared_file_mode_verifies_disjoint_extents() {
        let r = run_ior(
            ClusterSpec::tcp(1, 2),
            IorParams {
                transfer_bytes: MIB,
                segments: 4,
                procs_per_node: 8,
                class: ObjectClass::SX,
                iterations: 1,
                file_mode: FileMode::SharedFile,
                api: Api::Daos,
                inflight: 1,
            },
        );
        assert!(r.write_bw() > 0.5, "shared-file write {}", r.write_bw());
        assert!(r.read_bw() > 0.5, "shared-file read {}", r.read_bw());
        assert_eq!(r.write.total_bytes, 16 * 4 * MIB);
    }

    #[test]
    fn shared_file_is_competitive_with_file_per_process() {
        // Disjoint extents must not serialize: shared-file bandwidth
        // stays within a small factor of file-per-process.
        let fpp = small(ClusterSpec::tcp(1, 2), 8);
        let shared = run_ior(
            ClusterSpec::tcp(1, 2),
            IorParams {
                transfer_bytes: MIB,
                segments: 10,
                procs_per_node: 8,
                class: ObjectClass::SX,
                iterations: 1,
                file_mode: FileMode::SharedFile,
                api: Api::Daos,
                inflight: 1,
            },
        );
        assert!(
            shared.write_bw() > fpp.write_bw() * 0.4,
            "shared {} vs fpp {}",
            shared.write_bw(),
            fpp.write_bw()
        );
    }

    #[test]
    fn pipelined_transfers_move_all_bytes_no_slower() {
        let base = IorParams {
            transfer_bytes: MIB,
            segments: 16,
            procs_per_node: 4,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: FileMode::FilePerProcess,
            api: Api::Daos,
            inflight: 1,
        };
        let sync = run_ior(ClusterSpec::tcp(1, 2), base);
        let pip = run_ior(
            ClusterSpec::tcp(1, 2),
            IorParams {
                inflight: 8,
                ..base
            },
        );
        assert_eq!(pip.write.total_bytes, sync.write.total_bytes);
        assert_eq!(pip.read.total_bytes, sync.read.total_bytes);
        assert!(pip.write_bw() > 0.5 && pip.read_bw() > 0.5);
        // Splitting one large transfer into pipelined segments must not
        // collapse bandwidth.
        assert!(
            pip.write_bw() > sync.write_bw() * 0.5,
            "pipelined {} vs sync {}",
            pip.write_bw(),
            sync.write_bw()
        );
        // And the async path stays deterministic.
        let again = run_ior(
            ClusterSpec::tcp(1, 2),
            IorParams {
                inflight: 8,
                ..base
            },
        );
        assert_eq!(pip.write_bw().to_bits(), again.write_bw().to_bits());
        assert_eq!(pip.read_bw().to_bits(), again.read_bw().to_bits());
    }

    #[test]
    fn windowed_submission_quiesces_at_inflight_2_under_all_policies() {
        // Regression for the async-path capacity wait: with a window of 2
        // the submitter parks on a capacity future between segments, and
        // must be woken by completions under every scheduling policy —
        // including ones that reorder or delay wakes. A lost wakeup shows
        // up as a deadlocked (non-quiescent) run inside expect_quiescent.
        use daosim_kernel::SchedPolicy;
        let params = IorParams {
            transfer_bytes: MIB,
            segments: 8,
            procs_per_node: 4,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: FileMode::FilePerProcess,
            api: Api::Daos,
            inflight: 2,
        };
        let policies = [
            SchedPolicy::Fifo,
            SchedPolicy::Lifo,
            SchedPolicy::Random { seed: 0xF00D },
            SchedPolicy::WakeDelay {
                seed: 0xF00D,
                max_delay_ns: 50_000,
            },
        ];
        let mut totals = Vec::new();
        for policy in policies {
            // run_ior_on calls expect_quiescent internally; a stuck
            // capacity wait panics there rather than hanging.
            let r = run_ior_on(&Sim::with_policy(policy), ClusterSpec::tcp(1, 1), params);
            totals.push((r.write.total_bytes, r.read.total_bytes));
        }
        let want = (4 * 8 * MIB, 4 * 8 * MIB);
        for (policy, got) in policies.iter().zip(&totals) {
            assert_eq!(*got, want, "byte totals diverged under {policy:?}");
        }
    }

    #[test]
    fn dfs_api_pays_interface_overhead_on_small_transfers() {
        // Same cluster, same byte totals; the DFS run adds dirent
        // create/lookup/update traffic inside the measured window, so at
        // small transfers its bandwidth sits strictly below raw DAOS.
        let base = IorParams {
            transfer_bytes: 16 * 1024,
            segments: 2,
            procs_per_node: 4,
            class: ObjectClass::S1,
            iterations: 1,
            file_mode: FileMode::FilePerProcess,
            inflight: 1,
            api: Api::Daos,
        };
        let daos = run_ior(ClusterSpec::tcp(1, 1), base);
        let dfs = run_ior(
            ClusterSpec::tcp(1, 1),
            IorParams {
                api: Api::Dfs,
                ..base
            },
        );
        assert_eq!(dfs.write.total_bytes, daos.write.total_bytes);
        assert_eq!(dfs.read.total_bytes, daos.read.total_bytes);
        assert!(dfs.write_bw() > 0.0 && dfs.read_bw() > 0.0);
        assert!(
            dfs.write_bw() < daos.write_bw(),
            "dfs write {} should trail daos {}",
            dfs.write_bw(),
            daos.write_bw()
        );
        assert!(
            dfs.read_bw() < daos.read_bw(),
            "dfs read {} should trail daos {}",
            dfs.read_bw(),
            daos.read_bw()
        );
        // And the DFS path stays deterministic.
        let again = run_ior(
            ClusterSpec::tcp(1, 1),
            IorParams {
                api: Api::Dfs,
                ..base
            },
        );
        assert_eq!(dfs.write_bw().to_bits(), again.write_bw().to_bits());
        assert_eq!(dfs.read_bw().to_bits(), again.read_bw().to_bits());
    }

    #[test]
    fn dfs_api_runs_shared_file_and_pipelined_modes() {
        // Shared file: all ranks open-or-create one path; disjoint
        // extents land in one Array sized by the last close.
        let shared = run_ior(
            ClusterSpec::tcp(1, 2),
            IorParams {
                transfer_bytes: MIB,
                segments: 4,
                procs_per_node: 4,
                class: ObjectClass::SX,
                iterations: 1,
                file_mode: FileMode::SharedFile,
                inflight: 1,
                api: Api::Dfs,
            },
        );
        assert_eq!(shared.write.total_bytes, 8 * 4 * MIB);
        assert_eq!(shared.read.total_bytes, 8 * 4 * MIB);
        assert!(shared.write_bw() > 0.0 && shared.read_bw() > 0.0);
        // Pipelined: the windowed writer and raw-handle reads move every
        // byte with the same asserts as the DAOS async path.
        let pip = run_ior(
            ClusterSpec::tcp(1, 1),
            IorParams {
                transfer_bytes: MIB,
                segments: 8,
                procs_per_node: 4,
                class: ObjectClass::S1,
                iterations: 1,
                file_mode: FileMode::FilePerProcess,
                inflight: 4,
                api: Api::Dfs,
            },
        );
        assert_eq!(pip.write.total_bytes, 4 * 8 * MIB);
        assert_eq!(pip.read.total_bytes, 4 * 8 * MIB);
    }

    #[test]
    fn best_over_ppn_picks_max() {
        let (w, r) = best_over_ppn(
            ClusterSpec::tcp(1, 1),
            &[2, 8],
            IorParams {
                transfer_bytes: MIB,
                segments: 5,
                procs_per_node: 0,
                class: ObjectClass::S1,
                iterations: 1,
                file_mode: FileMode::FilePerProcess,
                api: Api::Daos,
                inflight: 1,
            },
        );
        assert!(w > 0.0 && r > 0.0);
    }
}
